package platsim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"argo/internal/platform"
	"argo/internal/search"
	"argo/internal/trace"
)

func TestSimulateValidation(t *testing.T) {
	sc := scenarioFor(t, DGL, platform.IceLake4S, Neighbor, SAGE, "flickr")
	bad := []SimConfig{
		{Procs: 0, SampleCores: 1, TrainCores: 1},
		{Procs: 1, SampleCores: 0, TrainCores: 1},
		{Procs: 1, SampleCores: 1, TrainCores: 0},
		{Procs: 8, SampleCores: 10, TrainCores: 10}, // 160 > 112 cores
	}
	for i, cfg := range bad {
		if _, err := Simulate(sc, cfg); err == nil {
			t.Fatalf("config %d should be rejected", i)
		}
	}
}

func TestSimulateDeterministic(t *testing.T) {
	sc := scenarioFor(t, DGL, platform.IceLake4S, Neighbor, SAGE, "ogbn-products")
	cfg := SimConfig{Procs: 4, SampleCores: 2, TrainCores: 8, MaxIters: 20}
	a, err := Simulate(sc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(sc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.EpochSeconds != b.EpochSeconds || a.AvgBandwidthGBs != b.AvgBandwidthGBs {
		t.Fatal("simulator must be deterministic")
	}
}

// The steady-state extrapolation must track the full simulation closely.
func TestExtrapolationMatchesFullSim(t *testing.T) {
	sc := scenarioFor(t, DGL, platform.SapphireRapids2S, Neighbor, SAGE, "flickr")
	// flickr: 44625·0.5/1024 ≈ 22 iterations — small enough to run fully.
	full, err := Simulate(sc, SimConfig{Procs: 4, SampleCores: 2, TrainCores: 6})
	if err != nil {
		t.Fatal(err)
	}
	extra, err := Simulate(sc, SimConfig{Procs: 4, SampleCores: 2, TrainCores: 6, MaxIters: 10})
	if err != nil {
		t.Fatal(err)
	}
	rel := math.Abs(extra.EpochSeconds-full.EpochSeconds) / full.EpochSeconds
	if rel > 0.05 {
		t.Fatalf("extrapolated %.4f vs full %.4f (%.1f%% off)", extra.EpochSeconds, full.EpochSeconds, rel*100)
	}
}

// Fig. 1: the single-process library baseline must flatten — going from 16
// cores to the full machine buys little, while 4→16 helps substantially.
func TestBaselineFlattensAt16Cores(t *testing.T) {
	for _, lib := range []Profile{DGL, PyG} {
		sc := scenarioFor(t, lib, platform.IceLake4S, Neighbor, SAGE, "ogbn-products")
		e4, err := BaselineEpoch(sc, 4)
		if err != nil {
			t.Fatal(err)
		}
		e16, err := BaselineEpoch(sc, 16)
		if err != nil {
			t.Fatal(err)
		}
		e112, err := BaselineEpoch(sc, 112)
		if err != nil {
			t.Fatal(err)
		}
		if s := e4 / e16; s < 1.4 || s > 3.5 {
			t.Fatalf("%s: 4→16 core speedup %.2f outside [1.4, 3.5]", lib.Name, s)
		}
		if s := e16 / e112; s > 1.45 {
			t.Fatalf("%s: 16→112 cores still speeds up %.2f× — baseline must flatten", lib.Name, s)
		}
	}
}

// Fig. 8: ARGO configurations keep scaling past 16 cores and beat the
// library default at full machine size.
func TestARGOScalesPastBaseline(t *testing.T) {
	sc := scenarioFor(t, DGL, platform.IceLake4S, Neighbor, SAGE, "ogbn-products")
	_, argo16 := BestWithBudget(sc, 16)
	_, argo64 := BestWithBudget(sc, 64)
	_, argo112 := BestWithBudget(sc, 112)
	if argo64 >= argo16 {
		t.Fatal("ARGO must keep improving from 16 to 64 cores")
	}
	// Past 64 cores the UPI bottleneck flattens the curve (paper §IX).
	if gain := argo64 / argo112; gain > 1.25 {
		t.Fatalf("64→112 ARGO gain %.2f should be modest (UPI-bound)", gain)
	}
	def, err := BaselineEpoch(sc, 112)
	if err != nil {
		t.Fatal(err)
	}
	if speedup := def / argo112; speedup < 1.3 || speedup > 6 {
		t.Fatalf("ARGO speedup over default %.2f outside the paper's band", speedup)
	}
}

// ShaDow's poorly-parallelised sampler makes ARGO's speedup larger than
// for Neighbor sampling (the paper's headline asymmetry).
func TestShadowBenefitsMoreThanNeighbor(t *testing.T) {
	for _, plat := range []platform.Spec{platform.IceLake4S, platform.SapphireRapids2S} {
		cores := plat.TotalCores()
		nsSpeedup := func(lib Profile) float64 {
			sc := scenarioFor(t, lib, plat, Neighbor, SAGE, "ogbn-products")
			def, err := BaselineEpoch(sc, cores)
			if err != nil {
				t.Fatal(err)
			}
			_, best := BestWithBudget(sc, cores)
			return def / best
		}
		shSpeedup := func(lib Profile) float64 {
			sc := scenarioFor(t, lib, plat, Shadow, GCN, "ogbn-products")
			def, err := BaselineEpoch(sc, cores)
			if err != nil {
				t.Fatal(err)
			}
			_, best := BestWithBudget(sc, cores)
			return def / best
		}
		for _, lib := range []Profile{DGL, PyG} {
			ns, sh := nsSpeedup(lib), shSpeedup(lib)
			if sh <= ns {
				t.Fatalf("%s on %s: ShaDow speedup %.2f not above Neighbor %.2f", lib.Name, plat.Name, sh, ns)
			}
		}
	}
}

// Fig. 6: achieved bandwidth grows with the process count and then
// flattens, while the sampled workload keeps growing.
func TestBandwidthGrowsAndSaturates(t *testing.T) {
	sc := scenarioFor(t, DGL, platform.IceLake4S, Neighbor, SAGE, "ogbn-products")
	var bw []float64
	for _, n := range []int{1, 2, 4, 8} {
		st := 112 / n
		s := st / 4
		if s < 1 {
			s = 1
		}
		m, err := Simulate(sc, SimConfig{Procs: n, SampleCores: s, TrainCores: st - s, MaxIters: 30})
		if err != nil {
			t.Fatal(err)
		}
		bw = append(bw, m.AvgBandwidthGBs)
	}
	if bw[1] < bw[0]*1.3 {
		t.Fatalf("bandwidth must grow substantially 1→2 processes: %v", bw)
	}
	// Flattening: the 4→8 step is much smaller than the 1→2 step.
	if (bw[3]-bw[2])/bw[2] > 0.5*(bw[1]-bw[0])/bw[0] {
		t.Fatalf("bandwidth did not saturate: %v", bw)
	}
	if bw[3] > sc.Platform.PeakBWGBs {
		t.Fatalf("achieved bandwidth %v exceeds platform peak", bw[3])
	}
}

// Fig. 2: with two processes, memory-intensive phases overlap the other
// process's compute, so the memory system is busy a larger fraction of
// the time than with one process.
func TestTraceMemoryOverlap(t *testing.T) {
	sc := scenarioFor(t, DGL, platform.IceLake4S, Neighbor, SAGE, "ogbn-products")
	busy := func(n int) float64 {
		tl := &trace.Timeline{}
		_, err := Simulate(sc, SimConfig{Procs: n, SampleCores: 2, TrainCores: 12, MaxIters: 6, Trace: tl})
		if err != nil {
			t.Fatal(err)
		}
		return tl.BusyFraction(trace.MemoryPhases)
	}
	if b1, b2 := busy(1), busy(2); b2 <= b1 {
		t.Fatalf("memory busy fraction must rise with 2 processes: %v vs %v", b1, b2)
	}
}

func TestTraceEventsWellFormed(t *testing.T) {
	sc := scenarioFor(t, DGL, platform.SapphireRapids2S, Shadow, GCN, "flickr")
	tl := &trace.Timeline{}
	m, err := Simulate(sc, SimConfig{Procs: 2, SampleCores: 2, TrainCores: 4, MaxIters: 4, Trace: tl})
	if err != nil {
		t.Fatal(err)
	}
	if len(tl.Events) == 0 {
		t.Fatal("no trace events recorded")
	}
	phases := map[string]bool{}
	for _, e := range tl.Events {
		if e.End < e.Start {
			t.Fatalf("event ends before it starts: %+v", e)
		}
		if e.Proc < 0 || e.Proc >= 2 {
			t.Fatalf("bad process id: %+v", e)
		}
		phases[e.Phase] = true
	}
	for _, want := range []string{"sample", "gather", "aggregate", "dense", "backward", "sync"} {
		if !phases[want] {
			t.Fatalf("phase %q missing from trace", want)
		}
	}
	if m.EpochSeconds <= 0 {
		t.Fatal("epoch must take time")
	}
}

// Over-allocating cores to one stage is not free: the landscape is a bowl
// in s (paper §V-A2) — at least, more sampling cores beyond the knee stop
// helping.
func TestSamplingCoresDiminishingReturns(t *testing.T) {
	sc := scenarioFor(t, DGL, platform.IceLake4S, Shadow, GCN, "ogbn-products")
	// n=2, t=4 keeps every configuration within one socket (≤28 cores) so
	// the s sweep isolates sampler parallelism from NUMA bandwidth steps.
	at := func(s int) float64 {
		m, err := Simulate(sc, SimConfig{Procs: 2, SampleCores: s, TrainCores: 4, MaxIters: 20})
		if err != nil {
			t.Fatal(err)
		}
		return m.EpochSeconds
	}
	e1, e4, e10 := at(1), at(4), at(10)
	if e4 >= e1 {
		t.Fatal("going 1→4 sampling cores must help the ShaDow sampler")
	}
	// With serial fraction 0.7, the marginal gain 4→10 must be small.
	if gain := e4 / e10; gain > 1.15 {
		t.Fatalf("4→10 sampling cores still gains %.2f× — should be saturated", gain)
	}
}

func TestSocketsUsedReported(t *testing.T) {
	sc := scenarioFor(t, DGL, platform.IceLake4S, Neighbor, SAGE, "flickr")
	m, err := Simulate(sc, SimConfig{Procs: 8, SampleCores: 4, TrainCores: 10, MaxIters: 5})
	if err != nil {
		t.Fatal(err)
	}
	if m.SocketsUsed != 4 {
		t.Fatalf("112 cores must span 4 sockets, got %d", m.SocketsUsed)
	}
	m2, err := Simulate(sc, SimConfig{Procs: 1, SampleCores: 2, TrainCores: 6, MaxIters: 5})
	if err != nil {
		t.Fatal(err)
	}
	if m2.SocketsUsed != 1 {
		t.Fatalf("8 cores must fit one socket, got %d", m2.SocketsUsed)
	}
}

// The overlap ablation: serialising sampling with training (no pipeline)
// must cost epoch time whenever sampling is non-trivial — this is what
// the s/t split buys before multi-processing even starts.
func TestNoOverlapSlower(t *testing.T) {
	sc := scenarioFor(t, DGL, platform.IceLake4S, Shadow, GCN, "ogbn-products")
	with, err := Simulate(sc, SimConfig{Procs: 2, SampleCores: 4, TrainCores: 8, MaxIters: 20})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Simulate(sc, SimConfig{Procs: 2, SampleCores: 4, TrainCores: 8, MaxIters: 20, NoOverlap: true})
	if err != nil {
		t.Fatal(err)
	}
	if without.EpochSeconds <= with.EpochSeconds {
		t.Fatalf("no-overlap %.3fs not slower than pipelined %.3fs", without.EpochSeconds, with.EpochSeconds)
	}
}

// The §IX future-work extension: NUMA-aware feature replication removes
// the UPI penalty, so large multi-socket configurations get faster; a
// single-socket configuration is unaffected.
func TestNUMAAwareExtension(t *testing.T) {
	sc := scenarioFor(t, DGL, platform.IceLake4S, Neighbor, SAGE, "ogbn-products")
	big := SimConfig{Procs: 8, SampleCores: 4, TrainCores: 10, MaxIters: 30}
	normal, err := Simulate(sc, big)
	if err != nil {
		t.Fatal(err)
	}
	big.NUMAAware = true
	aware, err := Simulate(sc, big)
	if err != nil {
		t.Fatal(err)
	}
	if aware.EpochSeconds >= normal.EpochSeconds {
		t.Fatalf("NUMA-aware %.3fs not faster than UPI-bound %.3fs at 112 cores", aware.EpochSeconds, normal.EpochSeconds)
	}

	small := SimConfig{Procs: 2, SampleCores: 2, TrainCores: 4, MaxIters: 30}
	n1, err := Simulate(sc, small)
	if err != nil {
		t.Fatal(err)
	}
	small.NUMAAware = true
	n2, err := Simulate(sc, small)
	if err != nil {
		t.Fatal(err)
	}
	if n1.EpochSeconds != n2.EpochSeconds {
		t.Fatalf("single-socket layout must be unaffected: %.4f vs %.4f", n1.EpochSeconds, n2.EpochSeconds)
	}
}

// Property: for any feasible layout, the simulated epoch is positive and
// finite, achieved bandwidth never exceeds the platform peak, and the
// iteration count matches the scenario.
func TestQuickSimulateInvariants(t *testing.T) {
	sc := scenarioFor(t, DGL, platform.IceLake4S, Neighbor, SAGE, "ogbn-products")
	sp := search.DefaultSpace(112)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := sp.Random(rng)
		m, err := Simulate(sc, SimConfig{Procs: c.Procs, SampleCores: c.SampleCores, TrainCores: c.TrainCores, MaxIters: 15})
		if err != nil {
			return false
		}
		if m.EpochSeconds <= 0 || math.IsInf(m.EpochSeconds, 0) || math.IsNaN(m.EpochSeconds) {
			return false
		}
		if m.AvgBandwidthGBs > sc.Platform.PeakBWGBs || m.AvgBandwidthGBs <= 0 {
			return false
		}
		return m.Iterations == sc.IterationsPerEpoch()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the epoch time is monotone in the workload — doubling the
// batch size cannot make the epoch shorter-per-target.
func TestQuickEpochScalesWithWork(t *testing.T) {
	base := scenarioFor(t, DGL, platform.SapphireRapids2S, Neighbor, SAGE, "ogbn-products")
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := search.DefaultSpace(64).Random(rng)
		cfg := SimConfig{Procs: c.Procs, SampleCores: c.SampleCores, TrainCores: c.TrainCores, MaxIters: 15}
		small := base
		small.BatchSize = 512
		big := base
		big.BatchSize = 2048
		ms, err1 := Simulate(small, cfg)
		mb, err2 := Simulate(big, cfg)
		if err1 != nil || err2 != nil {
			return false
		}
		// Bigger batches mean fewer iterations; per-epoch time must not
		// quadruple, and per-iteration time must grow.
		perIterSmall := ms.EpochSeconds / float64(ms.Iterations)
		perIterBig := mb.EpochSeconds / float64(mb.Iterations)
		return perIterBig > perIterSmall
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
