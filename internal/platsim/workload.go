package platsim

import (
	"fmt"
	"math"

	"argo/internal/graph"
	"argo/internal/platform"
)

// Scenario fixes everything about a simulated training run except the
// ARGO configuration: the machine, the library, the sampler-model pair,
// and the dataset (full-scale Table III statistics).
type Scenario struct {
	Platform  platform.Spec
	Library   Profile
	Sampler   SamplerKind
	Model     ModelKind
	Dataset   graph.DatasetSpec
	BatchSize int // global batch size B; 0 selects the sampler default
}

// Default global batch sizes, chosen like the libraries' example scripts:
// neighbor sampling streams large batches; ShaDow uses smaller ones since
// each target contributes a whole subgraph.
const (
	DefaultNeighborBatch = 1024
	DefaultShadowBatch   = 256
)

// The paper's sampler settings (§VI-A2), plus the survey samplers'
// shapes mirrored from internal/sampler's real implementations.
var (
	neighborFanouts = []int{15, 10, 5} // targets-first
	shadowFanouts   = []int{10, 5}
	shadowLayers    = 3

	saintWalksPerRoot = 4
	saintWalkLen      = 3
	saintLayers       = 3

	clusterCount  = 64 // offline greedy partition of the full graph
	clusterLayers = 3
	clusterIntra  = 0.6 // fraction of a member's degree that stays intra-cluster

	// Partition-local regime shape (engine's -sampling local): each
	// replica samples inside one of partitionCount shards plus a 1-hop
	// halo fringe that adds partitionHaloFrac of the shard's size.
	partitionCount    = 8
	partitionHaloFrac = 0.15
)

// collisionPoolFrac scales the shared-neighbour collision pool: sampled
// neighbours of a batch collide as if drawn from a pool of
// collisionPoolFrac·V candidates. Smaller pools mean more reuse inside
// big batches — the Fig. 5/6 workload-inflation mechanism.
const collisionPoolFrac = 0.30

// batch returns the effective global batch size. The subgraph samplers
// (ShaDow, SAINT, Cluster) default to the small batch because every
// target contributes a whole subgraph.
func (sc Scenario) batch() int {
	if sc.BatchSize > 0 {
		return sc.BatchSize
	}
	if sc.Sampler != Neighbor && sc.Sampler != PartLocal {
		return DefaultShadowBatch
	}
	return DefaultNeighborBatch
}

// TrainTargets returns the number of training targets per epoch.
func (sc Scenario) TrainTargets() int {
	return int(float64(sc.Dataset.Paper.Vertices) * sc.Dataset.TrainFrac)
}

// IterationsPerEpoch returns the number of synchronous iterations in one
// epoch (identical for every process count: the global batch is split).
func (sc Scenario) IterationsPerEpoch() int {
	n := sc.TrainTargets()
	b := sc.batch()
	return (n + b - 1) / b
}

// String names the scenario for tables and logs.
func (sc Scenario) String() string {
	return fmt.Sprintf("%s/%s-%s/%s/%s", sc.Library.Name, sc.Sampler, sc.Model, sc.Dataset.Name, sc.Platform.Name)
}

// IterWork is the per-process, per-iteration resource demand of one
// configuration. Core quantities are single-core seconds; byte quantities
// are DRAM traffic in bytes.
type IterWork struct {
	SampleCore  float64
	SampleBytes float64
	GatherBytes float64
	AggCore     float64
	AggBytes    float64
	DenseCore   float64
	DenseBytes  float64
	BackCore    float64
	BackBytes   float64

	SampledEdges float64 // per-process sampled edges (Fig. 6 workload)
	InputNodes   float64
}

// effFanout is the expected number of sampled neighbours per node:
// min(fanout, degree) smoothed over the degree distribution.
func effFanout(fanout int, avgDeg float64) float64 {
	f := float64(fanout)
	return f * (1 - math.Exp(-avgDeg/f))
}

// dedup estimates how many of m degree-proportional draws from a
// collision pool of size p are distinct (birthday saturation).
func dedup(m, p float64) float64 {
	if p <= 0 {
		return m
	}
	return m / (1 + m/p)
}

// addSubgraphLayers accumulates the per-layer aggregation and dense
// costs of a subgraph sampler (ShaDow, SAINT, Cluster): every layer
// aggregates over the same induced edge set and applies its dense
// transform to every subgraph node.
func addSubgraphLayers(w *IterWork, lib Profile, nodes, induced, concat float64, layers int, f0, f1, f2 float64) {
	dims := []float64{f0, f1, f1, f2}
	for l := 0; l < layers; l++ {
		fin, fout := dims[l], dims[l+1]
		w.AggBytes += induced * fin * 4
		w.AggCore += induced * fin / (lib.AggGFPerCore * 1e9)
		w.DenseCore += nodes * concat * fin * fout * 2 / (lib.DenseGFPerCore * 1e9)
		w.DenseBytes += nodes * (concat*fin + fout) * 4
	}
}

// PerProcessWork computes the per-iteration demand of one process when n
// processes share the global batch (per-process share b = B/n). All the
// effects discussed in paper §V-A1 fall out of the dedup model: smaller
// shares collide less, so the *total* sampled workload across processes
// grows with n.
func (sc Scenario) PerProcessWork(n int) IterWork {
	if n < 1 {
		n = 1
	}
	d := sc.Dataset.Paper
	avgDeg := 2 * float64(d.Edges) / float64(d.Vertices)
	pool := collisionPoolFrac * float64(d.Vertices)
	b := float64(sc.batch()) / float64(n)
	if b < 1 {
		b = 1
	}
	f0, f1, f2 := float64(d.F0), float64(d.F1), float64(d.F2)
	lib := sc.Library

	var w IterWork
	concat := 1.0
	if sc.Model == SAGE {
		concat = 2 // GraphSAGE concatenates self ∥ neighbour features
	}

	switch sc.Sampler {
	case Neighbor, PartLocal:
		// Frontier recursion, targets outward. The partition-local
		// regime runs the same recursion but every frontier is bounded
		// to one shard plus its 1-hop halo fringe, so collisions are
		// drawn from that much smaller pool — more reuse per batch and
		// a smaller distinct-node gather, the regime's bandwidth win.
		if sc.Sampler == PartLocal {
			partNodes := float64(d.Vertices) / float64(partitionCount) * (1 + partitionHaloFrac)
			pool = math.Min(pool, partNodes)
		}
		frontier := b
		frontiers := []float64{b}
		var layerEdges []float64
		for _, fan := range neighborFanouts {
			m := frontier * effFanout(fan, avgDeg)
			layerEdges = append(layerEdges, m)
			frontier += dedup(m, pool)
			frontiers = append(frontiers, frontier)
		}
		w.InputNodes = frontier
		for _, e := range layerEdges {
			w.SampledEdges += e
		}
		w.SampleCore = w.SampledEdges * lib.SampleEdgeCost
		w.SampleBytes = w.SampledEdges * lib.SampleBytesPerEdge
		w.GatherBytes = w.InputNodes * f0 * 4

		// Forward order: layer 0 consumes raw features over the deepest
		// block. dims[l] → dims[l+1]; dst of layer l is frontiers[L-1-l].
		dims := []float64{f0, f1, f1, f2}
		for l := 0; l < 3; l++ {
			edges := layerEdges[2-l] // deepest block first
			dst := frontiers[2-l]    // block's destination count
			fin, fout := dims[l], dims[l+1]
			w.AggBytes += edges * fin * 4
			w.AggCore += edges * fin / (lib.AggGFPerCore * 1e9)
			w.DenseCore += dst * concat * fin * fout * 2 / (lib.DenseGFPerCore * 1e9)
			w.DenseBytes += dst * (concat*fin + fout) * 4
		}

	case Shadow:
		raw := b
		perTarget := 1.0
		growth := 1.0
		for _, fan := range shadowFanouts {
			growth *= effFanout(fan, avgDeg)
			perTarget += growth
		}
		raw = b * perTarget
		nodes := dedup(raw, pool)
		// Induced edges: each node keeps the neighbours that landed in
		// the localized set; locality keeps this well below avgDeg.
		induced := nodes * math.Min(avgDeg*0.35, nodes)
		w.InputNodes = nodes
		w.SampledEdges = induced * float64(shadowLayers)
		// ShaDow pays both expansion and the expensive induction scan.
		w.SampleCore = raw*lib.SampleEdgeCost + nodes*avgDeg*lib.ShadowEdgeCost
		w.SampleBytes = nodes * avgDeg * lib.SampleBytesPerEdge
		w.GatherBytes = nodes * f0 * 4
		addSubgraphLayers(&w, lib, nodes, induced, concat, shadowLayers, f0, f1, f2)

	case Saint:
		// Each target roots walksPerRoot walks of walkLen steps; the
		// visited union induces the subgraph (internal/sampler/saint.go).
		raw := b * (1 + float64(saintWalksPerRoot*saintWalkLen))
		nodes := dedup(raw, pool)
		induced := nodes * math.Min(avgDeg*0.35, nodes)
		w.InputNodes = nodes
		w.SampledEdges = induced * float64(saintLayers)
		// Walk steps are single neighbour lookups; induction scans each
		// visited node's adjacency like ShaDow's.
		w.SampleCore = raw*lib.SampleEdgeCost + nodes*avgDeg*lib.ShadowEdgeCost
		w.SampleBytes = nodes * avgDeg * lib.SampleBytesPerEdge
		w.GatherBytes = nodes * f0 * 4
		addSubgraphLayers(&w, lib, nodes, induced, concat, saintLayers, f0, f1, f2)

	case ClusterK:
		// A batch pulls the whole clusters its targets fall in
		// (internal/sampler/cluster.go): distinct clusters saturate like
		// a birthday draw over the fixed offline partition, and cluster
		// interiors are dense, so most of a member's degree survives
		// induction.
		clusterSize := float64(d.Vertices) / float64(clusterCount)
		clustersHit := dedup(b, float64(clusterCount))
		nodes := math.Min(clustersHit*clusterSize, float64(d.Vertices))
		induced := nodes * avgDeg * clusterIntra
		w.InputNodes = nodes
		w.SampledEdges = induced * float64(clusterLayers)
		// No sampling walk at all — only the member scan that induces
		// the union subgraph.
		w.SampleCore = nodes * avgDeg * lib.ShadowEdgeCost * 0.5
		w.SampleBytes = nodes * avgDeg * lib.SampleBytesPerEdge * 0.5
		w.GatherBytes = nodes * f0 * 4
		addSubgraphLayers(&w, lib, nodes, induced, concat, clusterLayers, f0, f1, f2)

	default:
		panic(fmt.Sprintf("platsim: unknown sampler %q", sc.Sampler))
	}

	// Backward: re-touches the aggregation traffic (scatter instead of
	// gather) and costs roughly twice the forward dense work.
	w.BackCore = 2 * w.DenseCore
	w.BackBytes = 2*w.AggBytes + w.GatherBytes*0.5
	// Cache-miss / page-granularity amplification on irregular feature
	// traffic.
	amp := lib.MemAmplification
	if amp <= 0 {
		amp = 1
	}
	w.GatherBytes *= amp
	w.AggBytes *= amp
	w.BackBytes *= amp
	return w
}

// SyncSeconds models one synchronous-SGD gradient exchange across n
// processes: base latency plus a per-process term plus the model payload.
func (sc Scenario) SyncSeconds(n int) float64 {
	if n <= 1 {
		return 0
	}
	d := sc.Dataset.Paper
	f0, f1, f2 := float64(d.F0), float64(d.F1), float64(d.F2)
	concat := 1.0
	if sc.Model == SAGE {
		concat = 2
	}
	params := concat*f0*f1 + f1 + concat*f1*f1 + f1 + concat*f1*f2 + f2
	payload := params * 4 * 2 * float64(n-1) / float64(n) // ring all-reduce bytes
	const syncBW = 10e9                                   // shared-memory copy bandwidth
	lib := sc.Library
	return lib.SyncBase + lib.SyncPerProc*float64(n) + payload/syncBW
}
