package platsim

import (
	"math"
	"testing"

	"argo/internal/graph"
	"argo/internal/platform"
)

func scenarioFor(t testing.TB, lib Profile, plat platform.Spec, sampler SamplerKind, model ModelKind, dataset string) Scenario {
	t.Helper()
	ds, err := graph.Spec(dataset)
	if err != nil {
		t.Fatal(err)
	}
	return Scenario{Platform: plat, Library: lib, Sampler: sampler, Model: model, Dataset: ds}
}

func TestIterationsPerEpoch(t *testing.T) {
	sc := scenarioFor(t, DGL, platform.IceLake4S, Neighbor, SAGE, "ogbn-products")
	// products: 2,449,029 × 0.1 train frac = 244,902 targets at batch 1024.
	want := (244902 + 1023) / 1024
	if got := sc.IterationsPerEpoch(); got != want {
		t.Fatalf("IterationsPerEpoch = %d, want %d", got, want)
	}
	// Iterations are independent of the process count by construction.
	sc.BatchSize = 512
	if got := sc.IterationsPerEpoch(); got != (244902+511)/512 {
		t.Fatalf("custom batch iterations = %d", got)
	}
}

func TestBatchDefaults(t *testing.T) {
	ns := scenarioFor(t, DGL, platform.IceLake4S, Neighbor, SAGE, "flickr")
	sh := scenarioFor(t, DGL, platform.IceLake4S, Shadow, GCN, "flickr")
	if ns.batch() != DefaultNeighborBatch || sh.batch() != DefaultShadowBatch {
		t.Fatal("sampler batch defaults wrong")
	}
}

// The Fig. 5/6 workload-inflation property: total sampled edges across all
// processes grow monotonically with the process count, while per-process
// work shrinks.
func TestWorkloadInflation(t *testing.T) {
	for _, sampler := range []SamplerKind{Neighbor, Shadow} {
		sc := scenarioFor(t, DGL, platform.IceLake4S, sampler, SAGE, "ogbn-products")
		prevTotal := 0.0
		prevPer := math.Inf(1)
		for _, n := range []int{1, 2, 4, 8, 16} {
			w := sc.PerProcessWork(n)
			total := w.SampledEdges * float64(n)
			if total < prevTotal {
				t.Fatalf("%s: total edges decreased at n=%d: %g < %g", sampler, n, total, prevTotal)
			}
			if w.SampledEdges >= prevPer {
				t.Fatalf("%s: per-process edges did not shrink at n=%d", sampler, n)
			}
			prevTotal, prevPer = total, w.SampledEdges
		}
		// Inflation must be material but bounded (paper Fig. 6 shows
		// ~10–25% from 1 to 16 processes; ShaDow inflates less since its
		// per-target subgraphs overlap little across a batch).
		w1 := sc.PerProcessWork(1).SampledEdges
		w16 := sc.PerProcessWork(16).SampledEdges * 16
		ratio := w16 / w1
		if ratio < 1.01 || ratio > 2.5 {
			t.Fatalf("%s: inflation ratio %g outside plausible band", sampler, ratio)
		}
	}
}

func TestPerProcessWorkPositive(t *testing.T) {
	for _, sampler := range []SamplerKind{Neighbor, Shadow} {
		for _, dataset := range []string{"flickr", "reddit", "ogbn-products", "ogbn-papers100M"} {
			sc := scenarioFor(t, PyG, platform.SapphireRapids2S, sampler, GCN, dataset)
			w := sc.PerProcessWork(4)
			for name, v := range map[string]float64{
				"SampleCore": w.SampleCore, "SampleBytes": w.SampleBytes,
				"GatherBytes": w.GatherBytes, "AggCore": w.AggCore,
				"AggBytes": w.AggBytes, "DenseCore": w.DenseCore,
				"BackCore": w.BackCore, "BackBytes": w.BackBytes,
				"SampledEdges": w.SampledEdges, "InputNodes": w.InputNodes,
			} {
				if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("%s/%s: %s = %g", sampler, dataset, name, v)
				}
			}
		}
	}
}

// GraphSAGE concatenation doubles the dense-layer input width.
func TestSAGEDoublesDenseWork(t *testing.T) {
	sage := scenarioFor(t, DGL, platform.IceLake4S, Neighbor, SAGE, "ogbn-products")
	gcn := scenarioFor(t, DGL, platform.IceLake4S, Neighbor, GCN, "ogbn-products")
	ws, wg := sage.PerProcessWork(2), gcn.PerProcessWork(2)
	if ws.DenseCore <= wg.DenseCore*1.5 {
		t.Fatalf("SAGE dense %g not ≈2× GCN dense %g", ws.DenseCore, wg.DenseCore)
	}
	if ws.AggBytes != wg.AggBytes {
		t.Fatal("aggregation traffic should not depend on the model kind")
	}
}

// Datasets must order by scale: papers100M ≫ products ≫ reddit-level work.
func TestDatasetScaleOrdering(t *testing.T) {
	papers := scenarioFor(t, DGL, platform.IceLake4S, Neighbor, SAGE, "ogbn-papers100M")
	flickr := scenarioFor(t, DGL, platform.IceLake4S, Neighbor, SAGE, "flickr")
	if papers.TrainTargets() <= flickr.TrainTargets() {
		t.Fatal("papers100M must have more training targets than flickr")
	}
	wp := papers.PerProcessWork(1)
	wf := flickr.PerProcessWork(1)
	if wp.GatherBytes <= wf.GatherBytes {
		t.Fatal("papers100M per-iteration traffic should exceed flickr")
	}
}

func TestSyncSeconds(t *testing.T) {
	sc := scenarioFor(t, DGL, platform.IceLake4S, Neighbor, SAGE, "ogbn-products")
	if sc.SyncSeconds(1) != 0 {
		t.Fatal("single process must not pay sync cost")
	}
	prev := 0.0
	for n := 2; n <= 8; n++ {
		s := sc.SyncSeconds(n)
		if s <= prev {
			t.Fatalf("sync cost must grow with n: %g at n=%d", s, n)
		}
		prev = s
	}
	if prev > 0.1 {
		t.Fatalf("sync cost %gs implausibly large", prev)
	}
}

func TestEffFanout(t *testing.T) {
	// Degree far above fanout: nearly the full fanout is sampled.
	if f := effFanout(10, 1000); f < 9.99 {
		t.Fatalf("effFanout(10, 1000) = %g", f)
	}
	// Degree far below fanout: roughly the degree is sampled.
	if f := effFanout(100, 2); f < 1.5 || f > 2.5 {
		t.Fatalf("effFanout(100, 2) = %g", f)
	}
	// Monotone in degree.
	if effFanout(10, 5) >= effFanout(10, 50) {
		t.Fatal("effFanout must grow with degree")
	}
}

func TestDedup(t *testing.T) {
	if d := dedup(100, 0); d != 100 {
		t.Fatal("zero pool disables dedup")
	}
	// Few draws from a large pool: nearly all distinct.
	if d := dedup(10, 1e9); d < 9.99 {
		t.Fatalf("dedup(10, 1e9) = %g", d)
	}
	// Many draws saturate at the pool size.
	if d := dedup(1e12, 1000); d > 1000 {
		t.Fatalf("dedup must stay below the pool: %g", d)
	}
	// Monotone in draws.
	if dedup(100, 500) >= dedup(200, 500) {
		t.Fatal("dedup must be monotone in draws")
	}
}

// Partition-local sampling runs the same frontier recursion as Neighbor
// but over a pool bounded to one shard plus its halo, so every batch
// reuses more nodes: fewer distinct inputs, less gather traffic, and no
// more sampled edges than the unbounded sampler.
func TestPartitionLocalShrinksWorkingSet(t *testing.T) {
	for _, dataset := range []string{"flickr", "ogbn-products", "ogbn-papers100M"} {
		nb := scenarioFor(t, DGL, platform.IceLake4S, Neighbor, SAGE, dataset)
		pl := scenarioFor(t, DGL, platform.IceLake4S, PartLocal, SAGE, dataset)
		if nb.batch() != pl.batch() {
			t.Fatalf("%s: partition-local batch default must match neighbor's", dataset)
		}
		for _, n := range []int{1, 2, 8} {
			wn, wp := nb.PerProcessWork(n), pl.PerProcessWork(n)
			if !(wp.InputNodes > 0) || !(wp.SampledEdges > 0) || !(wp.GatherBytes > 0) {
				t.Fatalf("%s n=%d: degenerate partition-local work %+v", dataset, n, wp)
			}
			if wp.InputNodes >= wn.InputNodes {
				t.Fatalf("%s n=%d: partition-local inputs %g not below neighbor's %g", dataset, n, wp.InputNodes, wn.InputNodes)
			}
			if wp.GatherBytes >= wn.GatherBytes {
				t.Fatalf("%s n=%d: partition-local gather %g not below neighbor's %g", dataset, n, wp.GatherBytes, wn.GatherBytes)
			}
			if wp.SampledEdges > wn.SampledEdges {
				t.Fatalf("%s n=%d: partition-local edges %g exceed neighbor's %g", dataset, n, wp.SampledEdges, wn.SampledEdges)
			}
		}
	}
	// Simulated epochs stay well-formed.
	sc := scenarioFor(t, PyG, platform.SapphireRapids2S, PartLocal, GCN, "reddit")
	m, err := Simulate(sc, SimConfig{Procs: 2, SampleCores: 2, TrainCores: 4, MaxIters: 20})
	if err != nil {
		t.Fatal(err)
	}
	if !(m.EpochSeconds > 0) {
		t.Fatalf("partition-local epoch time %v", m.EpochSeconds)
	}
}

func TestUnknownSamplerPanics(t *testing.T) {
	sc := scenarioFor(t, DGL, platform.IceLake4S, Neighbor, SAGE, "flickr")
	sc.Sampler = "bogus"
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	sc.PerProcessWork(1)
}

func TestScenarioString(t *testing.T) {
	sc := scenarioFor(t, DGL, platform.IceLake4S, Neighbor, SAGE, "flickr")
	want := "DGL/neighbor-sage/flickr/Ice Lake 8380H (4S)"
	if got := sc.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

// The survey samplers (SAINT, Cluster-GCN) produce positive, finite
// workloads over the whole configuration range, and the subgraph
// samplers still exhibit the Fig. 6 inflation direction: total sampled
// work across processes does not shrink as processes are added.
func TestSurveySamplerWorkloads(t *testing.T) {
	for _, kind := range []SamplerKind{Saint, ClusterK} {
		sc := scenarioFor(t, DGL, platform.SapphireRapids2S, kind, SAGE, "ogbn-products")
		prevTotal := 0.0
		for n := 1; n <= 8; n *= 2 {
			w := sc.PerProcessWork(n)
			if !(w.SampleCore > 0) || !(w.InputNodes > 0) || !(w.DenseCore > 0) || !(w.AggCore > 0) {
				t.Fatalf("%s n=%d: degenerate work %+v", kind, n, w)
			}
			total := w.SampledEdges * float64(n)
			if total < prevTotal*0.99 {
				t.Fatalf("%s: total sampled work shrank from %v to %v at n=%d", kind, prevTotal, total, n)
			}
			prevTotal = total
		}
		m, err := Simulate(sc, SimConfig{Procs: 2, SampleCores: 2, TrainCores: 4, MaxIters: 20})
		if err != nil {
			t.Fatal(err)
		}
		if !(m.EpochSeconds > 0) {
			t.Fatalf("%s: epoch time %v", kind, m.EpochSeconds)
		}
	}
}
