package engine

import (
	"testing"

	"argo/internal/ddp"
	"argo/internal/graph"
	"argo/internal/nn"
	"argo/internal/sampler"
)

// Every sampler in the repository must plug into the multi-process engine
// and train: subgraph-based (ShaDow, Cluster, SAINT-RW, full-graph) and
// block-based (Neighbor) batches share the model and gradient paths.
func TestAllSamplersTrainEndToEnd(t *testing.T) {
	ds := testDataset(t)
	samplers := map[string]sampler.Sampler{
		"neighbor":  sampler.NewNeighbor(ds.Graph, []int{5, 5}),
		"shadow":    sampler.NewShaDow(ds.Graph, []int{5, 3}, 2),
		"cluster":   sampler.NewCluster(ds.Graph, 10, 2),
		"saint-rw":  sampler.NewSaintRW(ds.Graph, 2, 3, 2),
		"fullgraph": sampler.NewFullGraph(ds.Graph, 2),
	}
	for name, smp := range samplers {
		t.Run(name, func(t *testing.T) {
			cfg := testConfig(t, ds, 2)
			cfg.Sampler = smp
			e, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			first, err := e.RunEpoch(0)
			if err != nil {
				t.Fatal(err)
			}
			var last EpochResult
			for ep := 1; ep < 5; ep++ {
				last, err = e.RunEpoch(ep)
				if err != nil {
					t.Fatal(err)
				}
			}
			if last.MeanLoss >= first.MeanLoss {
				t.Fatalf("%s: loss did not decrease (%.4f → %.4f)", name, first.MeanLoss, last.MeanLoss)
			}
			if d := ddp.MaxWeightDivergence(e.ParamSets()); d != 0 {
				t.Fatalf("%s: replicas diverged by %v", name, d)
			}
		})
	}
}

// The paper's §II-B claim: full-graph training updates the model once per
// epoch and therefore converges in more epochs than mini-batch training.
func TestFullGraphConvergesSlower(t *testing.T) {
	spec := graph.DatasetSpec{
		Name: "fullgraph-unit", ScaledNodes: 500, ScaledEdges: 4000,
		ScaledF0: 16, ScaledHidden: 8, ScaledClasses: 5,
		Homophily: 0.4, Exponent: 2.2, TrainFrac: 0.3,
	}
	ds, err := graph.Build(spec, 77)
	if err != nil {
		t.Fatal(err)
	}
	run := func(smp sampler.Sampler, batch int) float64 {
		e, err := New(Config{
			Dataset:       ds,
			Sampler:       smp,
			Model:         nn.ModelSpec{Kind: nn.KindSAGE, Dims: []int{16, 8, 5}, Seed: 11},
			BatchSize:     batch,
			LR:            0.01,
			NumProcs:      1,
			SampleWorkers: 1,
			TrainWorkers:  1,
			Seed:          77,
		})
		if err != nil {
			t.Fatal(err)
		}
		const epochs = 4
		for ep := 0; ep < epochs; ep++ {
			if _, err := e.RunEpoch(ep); err != nil {
				t.Fatal(err)
			}
		}
		return e.Evaluate(ds.ValIdx)
	}
	// Full-graph: batch = whole training set → 1 update/epoch, 4 updates.
	fullAcc := run(sampler.NewFullGraph(ds.Graph, 2), len(ds.TrainIdx))
	// Mini-batch: batch 25 → 6 updates/epoch, 24 updates.
	miniAcc := run(sampler.NewNeighbor(ds.Graph, []int{5, 5}), 25)
	if miniAcc <= fullAcc {
		t.Fatalf("after equal epochs, mini-batch accuracy %.3f should beat full-graph %.3f (more updates/epoch)", miniAcc, fullAcc)
	}
}

// GIN (the model-zoo extension) must train end-to-end like the paper's
// two architectures.
func TestGINTrainsEndToEnd(t *testing.T) {
	ds := testDataset(t)
	cfg := testConfig(t, ds, 2)
	cfg.Model = nn.ModelSpec{Kind: nn.KindGIN, Dims: []int{16, 8, 4}, Seed: 13}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	first, err := e.RunEpoch(0)
	if err != nil {
		t.Fatal(err)
	}
	var last EpochResult
	for ep := 1; ep < 6; ep++ {
		last, err = e.RunEpoch(ep)
		if err != nil {
			t.Fatal(err)
		}
	}
	if last.MeanLoss >= first.MeanLoss {
		t.Fatalf("GIN loss did not decrease: %v → %v", first.MeanLoss, last.MeanLoss)
	}
	if d := ddp.MaxWeightDivergence(e.ParamSets()); d != 0 {
		t.Fatalf("GIN replicas diverged by %v", d)
	}
}
