package engine

import (
	"testing"
)

// BenchmarkEpoch measures a real training epoch of the scaled unit
// dataset with the multi-process engine, the workload ARGO's online tuner
// times on live systems.
func BenchmarkEpoch(b *testing.B) {
	for _, n := range []int{1, 2, 4} {
		b.Run(map[int]string{1: "1proc", 2: "2proc", 4: "4proc"}[n], func(b *testing.B) {
			ds := testDataset(b)
			e, err := New(testConfig(b, ds, n))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.RunEpoch(i); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
