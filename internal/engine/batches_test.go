package engine

import (
	"testing"

	"argo/internal/graph"
)

func idRange(n int) []graph.NodeID {
	ids := make([]graph.NodeID, n)
	for i := range ids {
		ids[i] = graph.NodeID(i)
	}
	return ids
}

func TestEpochBatchesCoverAllTargetsOnce(t *testing.T) {
	train := idRange(103)
	batches := epochBatches(train, 10, 5)
	if len(batches) != 11 {
		t.Fatalf("got %d batches, want 11", len(batches))
	}
	seen := map[graph.NodeID]int{}
	for _, b := range batches {
		for _, v := range b {
			seen[v]++
		}
	}
	if len(seen) != 103 {
		t.Fatalf("batches cover %d targets, want 103", len(seen))
	}
	for v, c := range seen {
		if c != 1 {
			t.Fatalf("target %d appears %d times", v, c)
		}
	}
}

func TestEpochBatchesShuffleDeterministic(t *testing.T) {
	train := idRange(50)
	a := epochBatches(train, 8, 7)
	b := epochBatches(train, 8, 7)
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("same seed must give same shuffle")
			}
		}
	}
	c := epochBatches(train, 8, 8)
	same := true
	for i := range a[0] {
		if a[0][i] != c[0][i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should shuffle differently")
	}
}

func TestEpochBatchesDoesNotMutateInput(t *testing.T) {
	train := idRange(20)
	epochBatches(train, 4, 3)
	for i, v := range train {
		if v != graph.NodeID(i) {
			t.Fatal("epochBatches mutated the training index slice")
		}
	}
}

func TestSplitSharesSizes(t *testing.T) {
	batch := idRange(10)
	shares := splitShares(batch, 4)
	wantSizes := []int{3, 3, 2, 2}
	total := 0
	for i, s := range shares {
		if len(s) != wantSizes[i] {
			t.Fatalf("share %d has %d targets, want %d", i, len(s), wantSizes[i])
		}
		total += len(s)
	}
	if total != 10 {
		t.Fatalf("shares cover %d targets", total)
	}
}

func TestSplitSharesSmallBatch(t *testing.T) {
	shares := splitShares(idRange(2), 4)
	nonEmpty := 0
	for _, s := range shares {
		if len(s) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty != 2 {
		t.Fatalf("2 targets over 4 procs: %d non-empty shares", nonEmpty)
	}
}

// The semantics invariant behind the batch adjustment: the union of the n
// shares equals the global batch regardless of n.
func TestSplitSharesPreserveGlobalBatch(t *testing.T) {
	batch := idRange(17)
	for _, n := range []int{1, 2, 3, 4, 8} {
		seen := map[graph.NodeID]bool{}
		for _, s := range splitShares(batch, n) {
			for _, v := range s {
				if seen[v] {
					t.Fatalf("n=%d: duplicate target %d", n, v)
				}
				seen[v] = true
			}
		}
		if len(seen) != 17 {
			t.Fatalf("n=%d: union has %d targets, want 17", n, len(seen))
		}
	}
}

func TestSeedForIsStable(t *testing.T) {
	if seedFor(1, 2, 3) != seedFor(1, 2, 3) {
		t.Fatal("seedFor must be pure")
	}
	seen := map[int64]bool{}
	for e := 0; e < 10; e++ {
		for i := 0; i < 10; i++ {
			s := seedFor(42, e, i)
			if seen[s] {
				t.Fatalf("seed collision at epoch %d iter %d", e, i)
			}
			seen[s] = true
		}
	}
}
