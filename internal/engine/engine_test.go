package engine

import (
	"testing"

	"argo/internal/ddp"
	"argo/internal/graph"
	"argo/internal/nn"
	"argo/internal/sampler"
)

func testDataset(t testing.TB) *graph.Dataset {
	t.Helper()
	spec := graph.DatasetSpec{
		Name:          "unit",
		ScaledNodes:   400,
		ScaledEdges:   3000,
		ScaledF0:      16,
		ScaledHidden:  8,
		ScaledClasses: 4,
		Homophily:     0.7,
		Exponent:      2.2,
		TrainFrac:     0.5,
	}
	ds, err := graph.Build(spec, 31)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func testConfig(t testing.TB, ds *graph.Dataset, n int) Config {
	t.Helper()
	return Config{
		Dataset:       ds,
		Sampler:       sampler.NewNeighbor(ds.Graph, []int{5, 5}),
		Model:         nn.ModelSpec{Kind: nn.KindSAGE, Dims: []int{16, 8, 4}, Seed: 11},
		BatchSize:     64,
		LR:            0.01,
		NumProcs:      n,
		SampleWorkers: 2,
		TrainWorkers:  2,
		Seed:          77,
	}
}

func TestNewValidation(t *testing.T) {
	ds := testDataset(t)
	bad := []Config{
		{},
		{Dataset: ds},
		{Dataset: ds, Sampler: sampler.NewNeighbor(ds.Graph, []int{5}), BatchSize: 0, NumProcs: 1, SampleWorkers: 1, TrainWorkers: 1},
		{Dataset: ds, Sampler: sampler.NewNeighbor(ds.Graph, []int{5}), BatchSize: 8, NumProcs: 0, SampleWorkers: 1, TrainWorkers: 1},
		{Dataset: ds, Sampler: sampler.NewNeighbor(ds.Graph, []int{5}), BatchSize: 8, NumProcs: 1, SampleWorkers: 0, TrainWorkers: 1},
		{Dataset: ds, Sampler: sampler.NewNeighbor(ds.Graph, []int{5}), BatchSize: 8, NumProcs: 1, SampleWorkers: 1, TrainWorkers: 1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Fatalf("config %d should be rejected", i)
		}
	}
}

func TestSingleProcessTrainingReducesLoss(t *testing.T) {
	ds := testDataset(t)
	e, err := New(testConfig(t, ds, 1))
	if err != nil {
		t.Fatal(err)
	}
	first, err := e.RunEpoch(0)
	if err != nil {
		t.Fatal(err)
	}
	var last EpochResult
	for ep := 1; ep < 8; ep++ {
		last, err = e.RunEpoch(ep)
		if err != nil {
			t.Fatal(err)
		}
	}
	if last.MeanLoss >= first.MeanLoss {
		t.Fatalf("loss did not decrease: %v → %v", first.MeanLoss, last.MeanLoss)
	}
	if acc := e.Evaluate(ds.ValIdx); acc < 1.5/float64(ds.NumClasses) {
		t.Fatalf("validation accuracy %.3f barely above chance", acc)
	}
}

func TestMultiProcessReplicasStayIdentical(t *testing.T) {
	ds := testDataset(t)
	e, err := New(testConfig(t, ds, 4))
	if err != nil {
		t.Fatal(err)
	}
	for ep := 0; ep < 3; ep++ {
		if _, err := e.RunEpoch(ep); err != nil {
			t.Fatal(err)
		}
		if d := ddp.MaxWeightDivergence(e.ParamSets()); d != 0 {
			t.Fatalf("epoch %d: replicas diverged by %v", ep, d)
		}
	}
}

// Every iteration must process one global batch of BatchSize targets
// (except the tail), regardless of the number of processes — the paper's
// effective-batch-size guarantee.
func TestEffectiveBatchSizePreserved(t *testing.T) {
	ds := testDataset(t)
	for _, n := range []int{1, 2, 4} {
		e, err := New(testConfig(t, ds, n))
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.RunEpoch(0)
		if err != nil {
			t.Fatal(err)
		}
		if res.BatchSeen != len(ds.TrainIdx) {
			t.Fatalf("n=%d: processed %d targets, want %d", n, res.BatchSeen, len(ds.TrainIdx))
		}
		wantIters := (len(ds.TrainIdx) + 63) / 64
		if res.NumIters != wantIters {
			t.Fatalf("n=%d: %d iterations, want %d (global batches)", n, res.NumIters, wantIters)
		}
	}
}

// The ablation: without batch adjustment each process consumes full-size
// batches from its own partition, so an "iteration" covers n·B targets —
// the altered semantics ByteGNN-style systems exhibit (paper §VIII).
func TestUnadjustedBatchAblation(t *testing.T) {
	ds := testDataset(t)
	e, err := New(testConfig(t, ds, 4))
	if err != nil {
		t.Fatal(err)
	}
	e.SetAdjustBatch(false)
	res, err := e.RunEpoch(0)
	if err != nil {
		t.Fatal(err)
	}
	// 200 train targets, 4 partitions of 50, batch 64 → 1 iteration each.
	adjusted := (len(ds.TrainIdx) + 63) / 64
	if res.NumIters >= adjusted {
		t.Fatalf("unadjusted run should take fewer, larger iterations: got %d, adjusted %d", res.NumIters, adjusted)
	}
	if res.BatchSeen != len(ds.TrainIdx) {
		t.Fatalf("still must see every target once, got %d", res.BatchSeen)
	}
}

// Multi-process training must converge like single-process training
// (Fig. 9): final accuracies within a small gap.
func TestConvergenceMatchesSingleProcess(t *testing.T) {
	ds := testDataset(t)
	accs := map[int]float64{}
	for _, n := range []int{1, 4} {
		e, err := New(testConfig(t, ds, n))
		if err != nil {
			t.Fatal(err)
		}
		for ep := 0; ep < 10; ep++ {
			if _, err := e.RunEpoch(ep); err != nil {
				t.Fatal(err)
			}
		}
		accs[n] = e.Evaluate(ds.ValIdx)
	}
	gap := accs[1] - accs[4]
	if gap < 0 {
		gap = -gap
	}
	if gap > 0.12 {
		t.Fatalf("accuracy gap %.3f between n=1 (%.3f) and n=4 (%.3f)", gap, accs[1], accs[4])
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	ds := testDataset(t)
	run := func() float64 {
		e, err := New(testConfig(t, ds, 2))
		if err != nil {
			t.Fatal(err)
		}
		var last EpochResult
		for ep := 0; ep < 2; ep++ {
			last, err = e.RunEpoch(ep)
			if err != nil {
				t.Fatal(err)
			}
		}
		return last.MeanLoss
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same config+seed must reproduce: %v vs %v", a, b)
	}
}

// Worker counts (s, t) are performance knobs only: they must not change
// the computed losses.
func TestWorkerCountsDoNotChangeResults(t *testing.T) {
	ds := testDataset(t)
	loss := func(s, tw int) float64 {
		cfg := testConfig(t, ds, 2)
		cfg.SampleWorkers = s
		cfg.TrainWorkers = tw
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.RunEpoch(0)
		if err != nil {
			t.Fatal(err)
		}
		return res.MeanLoss
	}
	ref := loss(1, 1)
	for _, c := range [][2]int{{2, 1}, {1, 4}, {4, 4}} {
		if got := loss(c[0], c[1]); got != ref {
			t.Fatalf("s=%d t=%d changed loss: %v vs %v", c[0], c[1], got, ref)
		}
	}
}

func TestBatchHookFires(t *testing.T) {
	ds := testDataset(t)
	e, err := New(testConfig(t, ds, 2))
	if err != nil {
		t.Fatal(err)
	}
	var calls []int
	e.BatchHook = func(it int) { calls = append(calls, it) }
	res, err := e.RunEpoch(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != res.NumIters {
		t.Fatalf("hook fired %d times for %d iters", len(calls), res.NumIters)
	}
	for i := 1; i < len(calls); i++ {
		if calls[i] != calls[i-1]+1 {
			t.Fatal("hook iteration counter must be contiguous")
		}
	}
}

func TestEvaluateEmpty(t *testing.T) {
	ds := testDataset(t)
	e, err := New(testConfig(t, ds, 1))
	if err != nil {
		t.Fatal(err)
	}
	if e.Evaluate(nil) != 0 {
		t.Fatal("empty evaluation must return 0")
	}
}

func TestShadowEngineTrains(t *testing.T) {
	ds := testDataset(t)
	cfg := testConfig(t, ds, 2)
	cfg.Sampler = sampler.NewShaDow(ds.Graph, []int{5, 3}, 2)
	cfg.Model = nn.ModelSpec{Kind: nn.KindGCN, Dims: []int{16, 8, 4}, Seed: 12}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	first, err := e.RunEpoch(0)
	if err != nil {
		t.Fatal(err)
	}
	var last EpochResult
	for ep := 1; ep < 6; ep++ {
		last, err = e.RunEpoch(ep)
		if err != nil {
			t.Fatal(err)
		}
	}
	if last.MeanLoss >= first.MeanLoss {
		t.Fatalf("ShaDow-GCN loss did not decrease: %v → %v", first.MeanLoss, last.MeanLoss)
	}
	if d := ddp.MaxWeightDivergence(e.ParamSets()); d != 0 {
		t.Fatalf("ShaDow replicas diverged by %v", d)
	}
}

func TestEpochStatsAccumulate(t *testing.T) {
	ds := testDataset(t)
	e, err := New(testConfig(t, ds, 2))
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.RunEpoch(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SampledEdges == 0 || res.Stats.InputNodes == 0 {
		t.Fatalf("epoch stats empty: %+v", res.Stats)
	}
	if res.Duration <= 0 {
		t.Fatal("duration must be positive")
	}
}
