// Package engine is the mini-batch GNN training engine: it plays the role
// DGL/PyG play in the paper. It owns the epoch loop, the sampling-worker
// pipeline that overlaps sampling with model propagation (the s-vs-t
// trade-off ARGO tunes), and the multi-replica iteration that the ARGO
// Multi-Process Engine coordinates.
//
// Semantics preservation is structural: every iteration processes one
// *global* mini-batch of size B; with n processes the batch is split into
// n shares of ≈B/n targets, each replica computes the mean-loss gradient
// over its share, and the weighted all-reduce reconstructs exactly the
// gradient of the mean loss over the global batch. Training with n
// processes is therefore algorithmically equivalent to training with one.
package engine

import (
	"math/rand"

	"argo/internal/graph"
)

// mix64 is SplitMix64, used to derive independent deterministic seeds for
// (epoch, iteration, worker) tuples.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// seedFor derives the sampling seed for one global batch.
func seedFor(base int64, epoch, iter int) int64 {
	return int64(mix64(uint64(base) ^ mix64(uint64(epoch))<<1 ^ mix64(uint64(iter))<<2))
}

// epochBatches shuffles the training IDs with the epoch's seed and chunks
// them into global mini-batches of size batch. Every training target
// appears in exactly one batch.
func epochBatches(train []graph.NodeID, batch int, seed int64) [][]graph.NodeID {
	ids := make([]graph.NodeID, len(train))
	copy(ids, train)
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	var out [][]graph.NodeID
	for lo := 0; lo < len(ids); lo += batch {
		hi := lo + batch
		if hi > len(ids) {
			hi = len(ids)
		}
		out = append(out, ids[lo:hi])
	}
	return out
}

// splitShares splits one global batch into n contiguous shares whose sizes
// differ by at most one. Shares may be empty when the batch is smaller
// than n.
func splitShares(batch []graph.NodeID, n int) [][]graph.NodeID {
	shares := make([][]graph.NodeID, n)
	base := len(batch) / n
	rem := len(batch) % n
	lo := 0
	for i := 0; i < n; i++ {
		size := base
		if i < rem {
			size++
		}
		shares[i] = batch[lo : lo+size]
		lo += size
	}
	return shares
}

// newEvalRand derives a deterministic RNG for evaluation batch lo.
func newEvalRand(seed int64, lo int) *rand.Rand {
	return rand.New(rand.NewSource(int64(mix64(uint64(seed)+0xe0a1) ^ uint64(lo)*0x9e37)))
}
