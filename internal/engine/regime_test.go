package engine

import (
	"testing"

	"argo/internal/ddp"
	"argo/internal/graph"
	"argo/internal/sampler"
)

// runLocalRegime trains epochs under the partition-local regime over
// the given transport and returns the per-epoch results plus the
// exchange totals.
func runLocalRegime(t *testing.T, ds *graph.Dataset, transport string, epochs int) ([]EpochResult, ddp.HaloStats) {
	t.Helper()
	const numProcs = 2
	ss, err := graph.ShardSetFromDataset(ds, graph.ShardOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	skel, err := ss.Skeleton()
	if err != nil {
		t.Fatal(err)
	}
	sources, ex, err := NewShardSourcesOpts(ss, numProcs, ShardSourceOptions{Transport: transport})
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()
	setup, err := NewPartitionSetup(ss, skel, numProcs, []int{5, 4, 3})
	if err != nil {
		t.Fatal(err)
	}
	cfg := shardedEngineConfig(skel, numProcs)
	cfg.Sampler = sampler.NewNeighbor(skel.Graph, []int{5, 4, 3})
	cfg.Sources = sources
	cfg.SamplingRegime = RegimeLocal
	cfg.LocalSamplers = setup.Samplers
	cfg.LocalTargets = setup.Targets
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var out []EpochResult
	for ep := 0; ep < epochs; ep++ {
		res, err := e.RunEpoch(ep)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, res)
	}
	return out, ex.TotalStats()
}

// TestPartitionSetupCoversTrainSplit: per-replica targets partition the
// train split, and every target is allowed by its replica's sampler.
func TestPartitionSetupCoversTrainSplit(t *testing.T) {
	ds := shardedTestDataset(t)
	ss, err := graph.ShardSetFromDataset(ds, graph.ShardOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	skel, err := ss.Skeleton()
	if err != nil {
		t.Fatal(err)
	}
	setup, err := NewPartitionSetup(ss, skel, 2, []int{5, 4})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	seen := map[graph.NodeID]bool{}
	for r, targets := range setup.Targets {
		ps := setup.Samplers[r].(*sampler.Partition)
		for _, v := range targets {
			if seen[v] {
				t.Fatalf("train node %d assigned to two replicas", v)
			}
			seen[v] = true
			if !ps.Allowed(v) {
				t.Fatalf("replica %d target %d outside its allowed set", r, v)
			}
		}
		total += len(targets)
	}
	if total != len(skel.TrainIdx) {
		t.Fatalf("replica targets cover %d of %d train nodes", total, len(skel.TrainIdx))
	}
}

// TestLocalRegimeTransportParity: the local regime's loss history and
// reverse-gradient digest are bit-identical between the inproc and tcp
// transports — the fp32 wire carries exact bits and the collect path
// reduces contributors in a fixed order, so nothing may depend on
// message timing.
func TestLocalRegimeTransportParity(t *testing.T) {
	ds := shardedTestDataset(t)
	const epochs = 3
	inproc, inStats := runLocalRegime(t, ds, "inproc", epochs)
	tcp, tcpStats := runLocalRegime(t, ds, "tcp", epochs)
	for ep := 0; ep < epochs; ep++ {
		if inproc[ep].MeanLoss != tcp[ep].MeanLoss {
			t.Fatalf("epoch %d: loss diverged across transports: %v vs %v", ep, inproc[ep].MeanLoss, tcp[ep].MeanLoss)
		}
		if inproc[ep].GradAbsSum != tcp[ep].GradAbsSum || inproc[ep].GradNodes != tcp[ep].GradNodes {
			t.Fatalf("epoch %d: gradient digest diverged: (%v, %d) vs (%v, %d)",
				ep, inproc[ep].GradAbsSum, inproc[ep].GradNodes, tcp[ep].GradAbsSum, tcp[ep].GradNodes)
		}
		if inproc[ep].GradNodes == 0 || inproc[ep].GradAbsSum == 0 {
			t.Fatalf("epoch %d: no gradient flow recorded under the local regime", ep)
		}
	}
	// Identical logical traffic; the wire framing differs by transport
	// but the halo gradient rows routed must match.
	if inStats.GradRows != tcpStats.GradRows || inStats.RemoteRows != tcpStats.RemoteRows {
		t.Fatalf("transports moved different logical traffic: %+v vs %+v", inStats, tcpStats)
	}
	if inStats.GradRows == 0 {
		t.Fatal("no halo gradient rows routed (boundary rows never learned)")
	}
}

// TestLocalRegimeDeterministic: two runs with the same seed are
// bit-identical (losses and gradient digest).
func TestLocalRegimeDeterministic(t *testing.T) {
	ds := shardedTestDataset(t)
	a, _ := runLocalRegime(t, ds, "inproc", 2)
	b, _ := runLocalRegime(t, ds, "inproc", 2)
	for ep := range a {
		if a[ep].MeanLoss != b[ep].MeanLoss || a[ep].GradAbsSum != b[ep].GradAbsSum {
			t.Fatalf("epoch %d not reproducible: (%v, %v) vs (%v, %v)",
				ep, a[ep].MeanLoss, a[ep].GradAbsSum, b[ep].MeanLoss, b[ep].GradAbsSum)
		}
	}
}

// TestLocalRegimeCutsRemoteFeatureTraffic: on the same shard set the
// partition-local regime fetches fewer remote feature rows than the
// exact regime — the point of the whole exercise. (Total remote rows
// include the gradient backhaul the exact regime doesn't pay; the
// feature direction alone must still shrink.)
func TestLocalRegimeCutsRemoteFeatureTraffic(t *testing.T) {
	ds := shardedTestDataset(t)
	const numProcs, epochs = 2, 2

	ss, err := graph.ShardSetFromDataset(ds, graph.ShardOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	skel, err := ss.Skeleton()
	if err != nil {
		t.Fatal(err)
	}
	sources, ex, err := NewShardSources(ss, numProcs)
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()
	cfg := shardedEngineConfig(skel, numProcs)
	cfg.Sampler = sampler.NewNeighbor(skel.Graph, []int{5, 4, 3})
	cfg.Sources = sources
	exact, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for ep := 0; ep < epochs; ep++ {
		if res, err := exact.RunEpoch(ep); err != nil {
			t.Fatal(err)
		} else if res.GradNodes != 0 || res.GradAbsSum != 0 {
			t.Fatalf("exact regime reported gradient routing: %+v", res)
		}
	}
	exactStats := ex.TotalStats()

	_, localStats := runLocalRegime(t, ds, "inproc", epochs)
	localFeatureRows := localStats.RemoteRows
	if localFeatureRows >= exactStats.RemoteRows {
		t.Fatalf("local regime fetched %d remote rows, exact %d — no locality win",
			localFeatureRows, exactStats.RemoteRows)
	}
	if localStats.RemoteRows == 0 {
		t.Fatal("local regime fetched no remote rows at all (halo never touched — suspicious for K=3 on 2 replicas)")
	}
}
