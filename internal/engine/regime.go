package engine

import (
	"fmt"

	"argo/internal/graph"
	"argo/internal/sampler"
)

// SamplingRegime selects how sharded training draws its mini-batches.
type SamplingRegime int

const (
	// RegimeExact samples over the assembled global topology: every
	// replica sees the same batch stream a single-store run would, so
	// losses stay bit-identical to single-store training at the cost of
	// full halo-exchange traffic per batch.
	RegimeExact SamplingRegime = iota
	// RegimeLocal samples partition-locally (the Cluster-GCN regime):
	// each replica draws seeds from its own shards' owned train nodes
	// and bounds frontiers to owned + 1-hop halo rows, trading a
	// bounded accuracy perturbation for a large cut in halo traffic.
	// Halo features still arrive through the batched exchange, and
	// halo-row gradients are pushed back to their owners through the
	// GradientRouter reverse path.
	RegimeLocal
)

// String implements fmt.Stringer.
func (r SamplingRegime) String() string {
	switch r {
	case RegimeExact:
		return "exact"
	case RegimeLocal:
		return "local"
	default:
		return fmt.Sprintf("regime(%d)", int(r))
	}
}

// ParseRegime parses a -sampling flag value. The empty string means
// exact, the default that keeps every parity gate bit-identical.
func ParseRegime(s string) (SamplingRegime, error) {
	switch s {
	case "", "exact":
		return RegimeExact, nil
	case "local":
		return RegimeLocal, nil
	default:
		return 0, fmt.Errorf("engine: unknown sampling regime %q (want exact or local)", s)
	}
}

// PartitionSetup holds the per-replica pieces the local regime needs:
// a partition-bounded sampler per replica and each replica's owned
// train targets.
type PartitionSetup struct {
	// Samplers[r] bounds replica r's frontiers to its shards' owned +
	// 1-hop halo rows.
	Samplers []sampler.Sampler
	// Targets[r] is the subset of the dataset's train split owned by
	// replica r's shards, in the split's order (disjoint across
	// replicas, union = the full train split).
	Targets [][]graph.NodeID
}

// NewPartitionSetup builds the local-regime setup for a shard set
// mapped onto numProcs replicas (shard s → replica s mod numProcs, the
// same mapping NewShardSourcesOpts uses). ds must carry the set's
// global topology and train split — typically ShardSet.Skeleton() —
// and fanouts configure the per-replica neighbor sampling.
func NewPartitionSetup(ss *graph.ShardSet, ds *graph.Dataset, numProcs int, fanouts []int) (*PartitionSetup, error) {
	if numProcs < 1 {
		return nil, fmt.Errorf("engine: %d replicas for a partition setup", numProcs)
	}
	if ds == nil || ds.Graph == nil {
		return nil, fmt.Errorf("engine: partition setup needs the global topology")
	}
	if len(fanouts) == 0 {
		return nil, fmt.Errorf("engine: partition setup needs fanouts")
	}
	k := ss.K()
	sets := make([][][]graph.NodeID, numProcs) // per replica: owned/halo lists
	for s := 0; s < k; s++ {
		sm, err := ss.ShardMap(s)
		if err != nil {
			return nil, err
		}
		r := s % numProcs
		sets[r] = append(sets[r], sm.Owned, sm.Halo)
	}
	ps := &PartitionSetup{
		Samplers: make([]sampler.Sampler, numProcs),
		Targets:  make([][]graph.NodeID, numProcs),
	}
	for r := 0; r < numProcs; r++ {
		ps.Samplers[r] = sampler.NewPartition(ds.Graph, fanouts, sets[r]...)
	}
	for _, v := range ds.TrainIdx {
		s, err := ss.Owner(v)
		if err != nil {
			return nil, err
		}
		r := s % numProcs
		ps.Targets[r] = append(ps.Targets[r], v)
	}
	return ps, nil
}
