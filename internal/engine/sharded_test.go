package engine

import (
	"math"
	"testing"

	"argo/internal/graph"
	"argo/internal/nn"
	"argo/internal/sampler"
)

func shardedTestDataset(t *testing.T) *graph.Dataset {
	t.Helper()
	spec := graph.DatasetSpec{
		Name:        "sharded-engine",
		ScaledNodes: 240, ScaledEdges: 1400,
		ScaledF0: 10, ScaledHidden: 8, ScaledClasses: 3,
		Homophily: 0.65, Exponent: 2.2, TrainFrac: 0.5,
	}
	ds, err := graph.Build(spec, 11)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func shardedEngineConfig(ds *graph.Dataset, numProcs int) Config {
	return Config{
		Dataset:       ds,
		Sampler:       sampler.NewNeighbor(ds.Graph, []int{5, 4, 3}),
		Model:         nn.ModelSpec{Kind: nn.KindSAGE, Dims: []int{10, 8, 8, 3}, Seed: 3},
		BatchSize:     32,
		LR:            0.01,
		NumProcs:      numProcs,
		SampleWorkers: 1,
		TrainWorkers:  1,
		Seed:          7,
	}
}

// The acceptance gate for the sharded training path: k-shard training
// with n replicas (shards unevenly mapped: k=3 on n=2) produces the
// same loss history and the same final weights as single-store training
// with the same n — the sampler runs over the assembled topology, the
// sources return bit-identical feature rows, so every gradient matches.
func TestShardedTrainingMatchesSingleStore(t *testing.T) {
	ds := shardedTestDataset(t)
	const numProcs, epochs = 2, 3

	base, err := New(shardedEngineConfig(ds, numProcs))
	if err != nil {
		t.Fatal(err)
	}
	var baseLoss []float64
	for ep := 0; ep < epochs; ep++ {
		res, err := base.RunEpoch(ep)
		if err != nil {
			t.Fatal(err)
		}
		baseLoss = append(baseLoss, res.MeanLoss)
	}

	ss, err := graph.ShardSetFromDataset(ds, graph.ShardOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	skel, err := ss.Skeleton()
	if err != nil {
		t.Fatal(err)
	}
	if skel.Features != nil || skel.Labels != nil {
		t.Fatal("skeleton materialised features/labels")
	}
	sources, ex, err := NewShardSources(ss, numProcs)
	if err != nil {
		t.Fatal(err)
	}
	cfg := shardedEngineConfig(skel, numProcs)
	cfg.Sampler = sampler.NewNeighbor(skel.Graph, []int{5, 4, 3})
	cfg.Sources = sources
	sharded, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for ep := 0; ep < epochs; ep++ {
		res, err := sharded.RunEpoch(ep)
		if err != nil {
			t.Fatal(err)
		}
		if diff := math.Abs(res.MeanLoss - baseLoss[ep]); diff > 1e-9 {
			t.Fatalf("epoch %d: sharded loss %v, single-store %v (diff %v)", ep, res.MeanLoss, baseLoss[ep], diff)
		}
	}

	bw, sw := base.ExportWeights(), sharded.ExportWeights()
	for i := range bw {
		if d := bw[i].MaxAbsDiff(sw[i]); d != 0 {
			t.Fatalf("weight tensor %d diverged by %v between sharded and single-store training", i, d)
		}
	}

	// With 3 shards on 2 replicas the batch shares cross ownership
	// boundaries constantly: the exchange must have moved real traffic.
	total := ex.TotalStats()
	if total.RemoteRows == 0 || total.RemoteBytes == 0 {
		t.Fatalf("no halo traffic recorded: %+v", total)
	}
	perReplica := ex.Stats()
	if len(perReplica) != numProcs {
		t.Fatalf("%d stat rows for %d replicas", len(perReplica), numProcs)
	}

	// Evaluation parity through the sources.
	accBase, err := base.EvaluateErr(ds.ValIdx)
	if err != nil {
		t.Fatal(err)
	}
	accSharded, err := sharded.EvaluateErr(skel.ValIdx)
	if err != nil {
		t.Fatal(err)
	}
	if accBase != accSharded {
		t.Fatalf("validation accuracy diverged: %v vs %v", accBase, accSharded)
	}
}

// The assembled topology the sharded path samples over is identical to
// the original graph — same RowPtr, same Col — so sampling seeds land
// on the same neighbours.
func TestShardedSkeletonTopologyExact(t *testing.T) {
	ds := shardedTestDataset(t)
	ss, err := graph.ShardSetFromDataset(ds, graph.ShardOptions{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	skel, err := ss.Skeleton()
	if err != nil {
		t.Fatal(err)
	}
	if skel.Graph.NumNodes != ds.Graph.NumNodes || skel.Graph.NumEdges() != ds.Graph.NumEdges() {
		t.Fatal("assembled topology has different shape")
	}
	for v := 0; v <= ds.Graph.NumNodes; v++ {
		if skel.Graph.RowPtr[v] != ds.Graph.RowPtr[v] {
			t.Fatalf("RowPtr diverges at %d", v)
		}
	}
	for i := range ds.Graph.Col {
		if skel.Graph.Col[i] != ds.Graph.Col[i] {
			t.Fatalf("Col diverges at %d", i)
		}
	}
	for si, pair := range [][2][]graph.NodeID{
		{skel.TrainIdx, ds.TrainIdx}, {skel.ValIdx, ds.ValIdx}, {skel.TestIdx, ds.TestIdx},
	} {
		if len(pair[0]) != len(pair[1]) {
			t.Fatalf("split %d length differs", si)
		}
		for j := range pair[0] {
			if pair[0][j] != pair[1][j] {
				t.Fatalf("split %d order diverges at %d (sharding must preserve split order, not just membership)", si, j)
			}
		}
	}
}

// Config validation: sources must match the replica count, and a
// skeleton dataset without sources is rejected before training.
func TestShardedConfigValidation(t *testing.T) {
	ds := shardedTestDataset(t)
	ss, err := graph.ShardSetFromDataset(ds, graph.ShardOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	skel, err := ss.Skeleton()
	if err != nil {
		t.Fatal(err)
	}
	cfg := shardedEngineConfig(skel, 2)
	cfg.Sampler = sampler.NewNeighbor(skel.Graph, []int{5, 4, 3})
	if _, err := New(cfg); err == nil {
		t.Fatal("skeleton dataset without sources accepted")
	}
	sources, _, err := NewShardSources(ss, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Sources = sources[:1]
	if _, err := New(cfg); err == nil {
		t.Fatal("source/replica count mismatch accepted")
	}
	cfg.Sources = sources
	if _, err := New(cfg); err != nil {
		t.Fatal(err)
	}
	if _, _, err := NewShardSources(ss, 0); err == nil {
		t.Fatal("zero replicas accepted")
	}
}
