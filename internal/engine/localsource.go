package engine

import (
	"fmt"
	"sort"
	"sync"

	"argo/internal/graph"
	"argo/internal/tensor"
)

// localSource is the data source of one local-regime replica. The
// partition-local sampler bounds every frontier to the replica's owned
// + 1-hop halo rows, so the working set is small and static — the
// Cluster-GCN observation — and the source exploits that in both
// directions:
//
//   - Features are fetched through the inner (exchange-backed) source
//     on first touch and cached for the rest of the run. Training
//     features never change, so each remote halo row crosses the wire
//     at most once per run instead of once per batch.
//   - Input-feature gradients are accumulated locally per row and
//     flushed through the inner GradientRouter once per epoch
//     (FlushGradients), so the backhaul is one row per touched node
//     per epoch instead of one per batch.
//
// Gathered values are pure functions of the ids, so losses are
// bit-identical to an uncached source. Row/byte traffic counts are
// deterministic too (each distinct row moves exactly once); with more
// than one sampling worker the *message* counts may vary run to run,
// since which batch first touches a row depends on scheduling.
type localSource struct {
	inner DataSource

	mu    sync.Mutex
	dim   int
	cache map[graph.NodeID][]float32

	gmu  sync.Mutex
	gdim int
	gsum map[graph.NodeID][]float32
}

func newLocalSource(inner DataSource) *localSource {
	return &localSource{
		inner: inner,
		cache: make(map[graph.NodeID][]float32),
		gsum:  make(map[graph.NodeID][]float32),
	}
}

func (s *localSource) GatherFeatures(ids []graph.NodeID) (*tensor.Matrix, error) {
	if len(ids) == 0 {
		return s.inner.GatherFeatures(ids)
	}
	// The lock covers the miss fetch: concurrent sampling workers
	// serialise here, so each row is fetched exactly once. Local-regime
	// batches are partition-bounded, so the cache is bounded by the
	// replica's owned + halo set (plus any evaluation rows).
	s.mu.Lock()
	defer s.mu.Unlock()
	var missing []graph.NodeID
	seen := map[graph.NodeID]bool{}
	for _, v := range ids {
		if _, ok := s.cache[v]; !ok && !seen[v] {
			seen[v] = true
			missing = append(missing, v)
		}
	}
	if len(missing) > 0 {
		m, err := s.inner.GatherFeatures(missing)
		if err != nil {
			return nil, err
		}
		s.dim = m.Cols
		for i, v := range missing {
			row := make([]float32, m.Cols)
			copy(row, m.Row(i))
			s.cache[v] = row
		}
	}
	out := tensor.New(len(ids), s.dim)
	for i, v := range ids {
		copy(out.Row(i), s.cache[v])
	}
	return out, nil
}

func (s *localSource) TargetLabels(ids []graph.NodeID) ([]int32, error) {
	// Local-regime targets are owned rows, served shard-locally by the
	// inner source; nothing to cache.
	return s.inner.TargetLabels(ids)
}

// ScatterGradients implements GradientRouter by accumulating into the
// epoch buffer; nothing crosses the wire until FlushGradients.
func (s *localSource) ScatterGradients(ids []graph.NodeID, grads *tensor.Matrix) error {
	if grads.Rows != len(ids) {
		return fmt.Errorf("engine: %d gradient rows for %d ids", grads.Rows, len(ids))
	}
	s.gmu.Lock()
	defer s.gmu.Unlock()
	s.gdim = grads.Cols
	for i, v := range ids {
		row := s.gsum[v]
		if row == nil {
			row = make([]float32, grads.Cols)
			s.gsum[v] = row
		}
		for j, x := range grads.Row(i) {
			row[j] += x
		}
	}
	return nil
}

// FlushGradients routes the accumulated per-row sums to their owners
// through the inner GradientRouter (one batched exchange, ids
// ascending) and resets the buffer. Each replica's step runs on a
// single goroutine in batch order, so the accumulated floats — and
// therefore the flushed rows — are deterministic.
func (s *localSource) FlushGradients() error {
	s.gmu.Lock()
	if len(s.gsum) == 0 {
		s.gmu.Unlock()
		return nil
	}
	ids := make([]graph.NodeID, 0, len(s.gsum))
	for v := range s.gsum {
		ids = append(ids, v)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	m := tensor.New(len(ids), s.gdim)
	for i, v := range ids {
		copy(m.Row(i), s.gsum[v])
	}
	s.gsum = make(map[graph.NodeID][]float32)
	s.gmu.Unlock()
	rt, ok := s.inner.(GradientRouter)
	if !ok {
		return fmt.Errorf("engine: local source's inner source has no gradient reverse path")
	}
	return rt.ScatterGradients(ids, m)
}

// CollectGradients implements GradientCollector by delegating to the
// inner source's drain.
func (s *localSource) CollectGradients() ([]graph.NodeID, *tensor.Matrix, error) {
	c, ok := s.inner.(GradientCollector)
	if !ok {
		return nil, nil, nil
	}
	return c.CollectGradients()
}
