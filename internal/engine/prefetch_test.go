package engine

import (
	"math/rand"
	"sync/atomic"
	"testing"

	"argo/internal/graph"
	"argo/internal/sampler"
	"argo/internal/tensor"
)

// countingSampler wraps a sampler and records concurrency.
type countingSampler struct {
	inner       sampler.Sampler
	inFlight    int32
	maxInFlight int32
}

func (c *countingSampler) Name() string   { return c.inner.Name() }
func (c *countingSampler) NumLayers() int { return c.inner.NumLayers() }
func (c *countingSampler) Sample(rng *rand.Rand, targets []graph.NodeID) *sampler.MiniBatch {
	n := atomic.AddInt32(&c.inFlight, 1)
	for {
		max := atomic.LoadInt32(&c.maxInFlight)
		if n <= max || atomic.CompareAndSwapInt32(&c.maxInFlight, max, n) {
			break
		}
	}
	mb := c.inner.Sample(rng, targets)
	atomic.AddInt32(&c.inFlight, -1)
	return mb
}

func prefetchJobs(t *testing.T, ds *graph.Dataset, n int) []prefetchJob {
	t.Helper()
	jobs := make([]prefetchJob, n)
	for i := range jobs {
		lo := (i * 10) % len(ds.TrainIdx)
		hi := lo + 10
		if hi > len(ds.TrainIdx) {
			hi = len(ds.TrainIdx)
		}
		jobs[i] = prefetchJob{index: i, seed: int64(1000 + i), targets: ds.TrainIdx[lo:hi]}
	}
	return jobs
}

// The batch sequence must be identical for any worker count: per-job
// seeds plus the reorder buffer make sampling parallelism invisible.
func TestPrefetcherDeterministicAcrossWorkerCounts(t *testing.T) {
	ds := testDataset(t)
	smp := sampler.NewNeighbor(ds.Graph, []int{4, 4})
	collect := func(workers int) []int64 {
		jobs := prefetchJobs(t, ds, 20)
		p := newPrefetcher(smp, jobs, workers)
		var edges []int64
		for range jobs {
			edges = append(edges, p.Next().Stats.SampledEdges)
		}
		p.Close()
		return edges
	}
	ref := collect(1)
	for _, w := range []int{2, 4, 8} {
		got := collect(w)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: batch %d differs (%d vs %d edges)", w, i, got[i], ref[i])
			}
		}
	}
}

// The prefetch window must bound how far sampling runs ahead.
func TestPrefetcherWindowBounded(t *testing.T) {
	ds := testDataset(t)
	cs := &countingSampler{inner: sampler.NewNeighbor(ds.Graph, []int{4, 4})}
	jobs := prefetchJobs(t, ds, 30)
	const workers = 3
	p := newPrefetcher(cs, jobs, workers)
	for range jobs {
		p.Next()
	}
	p.Close()
	if max := atomic.LoadInt32(&cs.maxInFlight); max > workers {
		t.Fatalf("%d samplers ran concurrently, worker bound is %d", max, workers)
	}
}

// Batches must arrive strictly in job-index order regardless of which
// worker finishes first (the reorder buffer contract).
func TestPrefetcherOrdering(t *testing.T) {
	ds := testDataset(t)
	smp := sampler.NewNeighbor(ds.Graph, []int{4, 4})
	jobs := prefetchJobs(t, ds, 25)
	// Tag each job with a distinct single target so order is observable.
	for i := range jobs {
		jobs[i].targets = ds.TrainIdx[i : i+1]
	}
	p := newPrefetcher(smp, jobs, 4)
	for i := range jobs {
		mb := p.Next()
		if mb.Targets[0] != ds.TrainIdx[i] {
			t.Fatalf("batch %d out of order", i)
		}
	}
	p.Close()
}

// The fetch stage runs on the sampling workers and attaches features
// and labels that are identical to an inline gather, in job order, for
// any worker count.
func TestFetchingPrefetcherAttachesGatheredData(t *testing.T) {
	ds := testDataset(t)
	smp := sampler.NewNeighbor(ds.Graph, []int{4, 4})
	src := datasetSource{ds: ds}
	fetch := func(mb *sampler.MiniBatch) (*tensor.Matrix, []int32, error) {
		x0, err := src.GatherFeatures(mb.InputNodes())
		if err != nil {
			return nil, nil, err
		}
		labels, err := src.TargetLabels(mb.Targets)
		return x0, labels, err
	}
	for _, workers := range []int{1, 4} {
		jobs := prefetchJobs(t, ds, 12)
		p := newFetchingPrefetcher(smp, jobs, workers, fetch)
		for i := 0; i < len(jobs); i++ {
			bd := p.NextData()
			if bd.err != nil {
				t.Fatal(bd.err)
			}
			if bd.x0 == nil || bd.labels == nil {
				t.Fatalf("workers=%d: job %d missing prefetched data", workers, i)
			}
			want, err := src.GatherFeatures(bd.mb.InputNodes())
			if err != nil {
				t.Fatal(err)
			}
			if !bd.x0.Equal(want) {
				t.Fatalf("workers=%d: job %d prefetched features differ from inline gather", workers, i)
			}
			if len(bd.labels) != len(bd.mb.Targets) {
				t.Fatalf("workers=%d: job %d has %d labels for %d targets", workers, i, len(bd.labels), len(bd.mb.Targets))
			}
		}
		p.Close()
	}
}

// Without a fetch callback the prefetcher must not gather anything.
func TestPlainPrefetcherSkipsFetch(t *testing.T) {
	ds := testDataset(t)
	smp := sampler.NewNeighbor(ds.Graph, []int{4, 4})
	jobs := prefetchJobs(t, ds, 3)
	p := newPrefetcher(smp, jobs, 2)
	for range jobs {
		bd := p.NextData()
		if bd.x0 != nil || bd.labels != nil || bd.err != nil {
			t.Fatalf("plain prefetcher attached data: %+v", bd)
		}
	}
	p.Close()
}

func TestPrefetcherEmptyJobTargets(t *testing.T) {
	ds := testDataset(t)
	smp := sampler.NewNeighbor(ds.Graph, []int{4, 4})
	jobs := []prefetchJob{{index: 0, seed: 1, targets: nil}}
	p := newPrefetcher(smp, jobs, 2)
	mb := p.Next()
	if len(mb.Targets) != 0 {
		t.Fatal("empty job should produce an empty batch")
	}
	p.Close()
}
