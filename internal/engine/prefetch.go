package engine

import (
	"math/rand"
	"sync"

	"argo/internal/graph"
	"argo/internal/sampler"
	"argo/internal/tensor"
)

// prefetcher runs a pool of sampling workers ahead of the trainer,
// reproducing the sampling/propagation overlap that DGL/PyG dataloaders
// implement with `num_workers` and that ARGO's `s` parameter sizes.
//
// With a fetch callback installed, the workers also gather each batch's
// feature rows and labels right after sampling it — so in a sharded run
// the halo exchange for batch i+1 is in flight while batch i computes,
// hiding the communication behind compute. Features and labels are pure
// functions of the batch's node ids, so prefetching them early is
// invisible to training: the values (and therefore the losses) are
// bit-identical to gathering inside the training step.
//
// Determinism: each job's sampling RNG is seeded from the job's own seed,
// never from worker identity, and results are consumed strictly in job
// order through a reorder buffer — so the produced batch sequence is
// byte-identical no matter how many workers run or how they interleave.
type prefetcher struct {
	jobs    chan prefetchJob
	results []chan batchData
	window  chan struct{}
	quit    chan struct{}
	stop    sync.Once
	wg      sync.WaitGroup
	next    int
}

type prefetchJob struct {
	index   int
	seed    int64
	targets []graph.NodeID
}

// batchData is one prefetched unit of work: the sampled mini-batch plus
// — when a fetch callback ran — its gathered features and labels (or
// the error the gather produced, surfaced at consumption time).
type batchData struct {
	mb     *sampler.MiniBatch
	x0     *tensor.Matrix
	labels []int32
	err    error
}

// fetchFunc gathers a sampled batch's feature rows and target labels
// (through a replica's DataSource). It runs on sampling workers, so it
// must be safe to call concurrently with training.
type fetchFunc func(mb *sampler.MiniBatch) (*tensor.Matrix, []int32, error)

// newPrefetcher starts `workers` sampling goroutines over the given jobs.
// The prefetch window bounds how far sampling runs ahead of consumption.
func newPrefetcher(s sampler.Sampler, jobs []prefetchJob, workers int) *prefetcher {
	return newFetchingPrefetcher(s, jobs, workers, nil)
}

// newFetchingPrefetcher is newPrefetcher with an optional fetch stage:
// when fetch is non-nil, workers gather each sampled batch's features
// and labels before handing it over, overlapping the (possibly remote)
// gather with the trainer's compute on earlier batches.
func newFetchingPrefetcher(s sampler.Sampler, jobs []prefetchJob, workers int, fetch fetchFunc) *prefetcher {
	if workers < 1 {
		workers = 1
	}
	p := &prefetcher{
		jobs:    make(chan prefetchJob),
		results: make([]chan batchData, len(jobs)),
		window:  make(chan struct{}, workers+2),
		quit:    make(chan struct{}),
	}
	for i := range p.results {
		p.results[i] = make(chan batchData, 1)
	}
	for w := 0; w < workers; w++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for {
				var job prefetchJob
				var ok bool
				select {
				case job, ok = <-p.jobs:
					if !ok {
						return
					}
				case <-p.quit:
					return
				}
				rng := rand.New(rand.NewSource(job.seed))
				bd := batchData{mb: s.Sample(rng, job.targets)}
				if fetch != nil && bd.mb != nil && len(bd.mb.Targets) > 0 {
					bd.x0, bd.labels, bd.err = fetch(bd.mb)
				}
				select {
				case p.results[job.index] <- bd:
				case <-p.quit:
					return
				}
			}
		}()
	}
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		for _, job := range jobs {
			select {
			case p.window <- struct{}{}: // blocks when the window is full
			case <-p.quit:
				return
			}
			select {
			case p.jobs <- job:
			case <-p.quit:
				return
			}
		}
		close(p.jobs)
	}()
	return p
}

// NextData returns the prefetched data for the next job index, blocking
// until it is ready. Next and NextData together must be called exactly
// len(jobs) times.
func (p *prefetcher) NextData() batchData {
	bd := <-p.results[p.next]
	p.next++
	<-p.window // open a slot for the producer
	return bd
}

// Next returns the mini-batch for the next job index, blocking until it
// is sampled.
func (p *prefetcher) Next() *sampler.MiniBatch { return p.NextData().mb }

// Close stops the feeder and worker goroutines and waits for them to
// drain. It is idempotent and safe to call at any point — including
// mid-epoch when an error aborts consumption early, where it unblocks
// workers parked on the reorder buffer so nothing leaks.
func (p *prefetcher) Close() {
	p.stop.Do(func() { close(p.quit) })
	p.wg.Wait()
}
