package engine

import (
	"math/rand"
	"sync"

	"argo/internal/graph"
	"argo/internal/sampler"
)

// prefetcher runs a pool of sampling workers ahead of the trainer,
// reproducing the sampling/propagation overlap that DGL/PyG dataloaders
// implement with `num_workers` and that ARGO's `s` parameter sizes.
//
// Determinism: each job's sampling RNG is seeded from the job's own seed,
// never from worker identity, and results are consumed strictly in job
// order through a reorder buffer — so the produced batch sequence is
// byte-identical no matter how many workers run or how they interleave.
type prefetcher struct {
	jobs    chan prefetchJob
	results []chan *sampler.MiniBatch
	window  chan struct{}
	wg      sync.WaitGroup
	next    int
}

type prefetchJob struct {
	index   int
	seed    int64
	targets []graph.NodeID
}

// newPrefetcher starts `workers` sampling goroutines over the given jobs.
// The prefetch window bounds how far sampling runs ahead of consumption.
func newPrefetcher(s sampler.Sampler, jobs []prefetchJob, workers int) *prefetcher {
	if workers < 1 {
		workers = 1
	}
	p := &prefetcher{
		jobs:    make(chan prefetchJob),
		results: make([]chan *sampler.MiniBatch, len(jobs)),
		window:  make(chan struct{}, workers+2),
	}
	for i := range p.results {
		p.results[i] = make(chan *sampler.MiniBatch, 1)
	}
	for w := 0; w < workers; w++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for job := range p.jobs {
				rng := rand.New(rand.NewSource(job.seed))
				p.results[job.index] <- s.Sample(rng, job.targets)
			}
		}()
	}
	go func() {
		for _, job := range jobs {
			p.window <- struct{}{} // blocks when the window is full
			p.jobs <- job
		}
		close(p.jobs)
	}()
	return p
}

// Next returns the mini-batch for the next job index, blocking until it is
// sampled. It must be called exactly len(jobs) times.
func (p *prefetcher) Next() *sampler.MiniBatch {
	mb := <-p.results[p.next]
	p.next++
	<-p.window // open a slot for the producer
	return mb
}

// Close waits for the worker goroutines to drain. It is safe to call after
// consuming all batches.
func (p *prefetcher) Close() { p.wg.Wait() }
