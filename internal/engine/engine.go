package engine

import (
	"fmt"
	"sync"
	"time"

	"argo/internal/ddp"
	"argo/internal/graph"
	"argo/internal/nn"
	"argo/internal/sampler"
	"argo/internal/tensor"
)

// Config describes one training run. NumProcs, SampleWorkers and
// TrainWorkers are ARGO's three parallelisation parameters (n, s, t).
type Config struct {
	Dataset *graph.Dataset
	Sampler sampler.Sampler
	Model   nn.ModelSpec
	// BatchSize is the GLOBAL mini-batch size B. Each of the NumProcs
	// replicas trains on ≈B/NumProcs targets per iteration, preserving
	// the algorithm's effective batch size (paper §IV-B2).
	BatchSize     int
	LR            float64
	NumProcs      int
	SampleWorkers int // sampling cores per process (s)
	TrainWorkers  int // training cores per process (t)
	Seed          int64
	// AdjustBatch mirrors the Multi-Process Engine's batch-size
	// adjustment. It defaults to true via New; setting it false after New
	// reproduces the semantics-breaking naive-DDP ablation, where every
	// process trains on a full-size batch from its own partition
	// (effective batch n·B).
	AdjustBatch bool
	// Sources, when non-nil, supplies each replica's feature/label
	// source (len must equal NumProcs) — the shard-aware training path,
	// where Dataset carries only topology, splits, spec, and class
	// count, and every feature/label lookup goes through the replica's
	// source (NewShardSources). Nil means every replica reads the
	// materialised Dataset directly.
	Sources []DataSource
	// NoOverlap disables the exchange/sampling overlap: features and
	// labels are then gathered inside the training step instead of on
	// the sampling workers (where the halo fetch for batch i+1 runs
	// while batch i computes). The knob is performance-only — gathered
	// values are pure functions of the batch's ids, so losses are
	// bit-identical either way.
	NoOverlap bool
	// SamplingRegime selects exact (default: global batches split n
	// ways, bit-identical to single-store) or partition-local sampling.
	// The local regime requires Sources plus the per-replica Samplers
	// and Targets from NewPartitionSetup; Sampler stays the exact
	// sampler and keeps serving Evaluate, so accuracy numbers compare
	// apples-to-apples across regimes.
	SamplingRegime SamplingRegime
	// LocalSamplers[r] is replica r's partition-bounded sampler (local
	// regime only; len must equal NumProcs).
	LocalSamplers []sampler.Sampler
	// LocalTargets[r] is replica r's owned train targets (local regime
	// only; len must equal NumProcs).
	LocalTargets [][]graph.NodeID
}

// EpochResult summarises one training epoch.
type EpochResult struct {
	Epoch     int
	MeanLoss  float64
	Duration  time.Duration
	Stats     sampler.Stats // accumulated sampling workload
	NumIters  int
	BatchSeen int // total target nodes processed
	// GradNodes and GradAbsSum summarise the local regime's reverse
	// gradient path: the number of owned rows that received routed
	// input-feature gradient contributions this epoch, and the L1 mass
	// of those contributions. Both are deterministic for a fixed
	// schedule (ids ascending, contributors reduced in ascending
	// replica order), so they double as a cross-transport parity
	// digest. Zero under the exact regime.
	GradNodes  int64
	GradAbsSum float64
}

// replica is one "GNN process": its own model, optimizer, worker pools,
// and data source (the global dataset, or its mapped shards).
type replica struct {
	model     *nn.GNN
	opt       *nn.Adam
	trainPool *tensor.Pool
	source    DataSource
	// router, when non-nil (local regime over shard sources), receives
	// the input-feature gradient of every batch so halo rows' credit
	// reaches their owning replica.
	router GradientRouter

	// per-iteration scratch, written by the replica's goroutine only
	lastLoss  float64
	lastCount int
	lastStats sampler.Stats
	lastErr   error
}

// Engine trains a GNN with n synchronized replicas. It is the substrate
// both the library baseline (n=1) and ARGO's Multi-Process Engine run on.
type Engine struct {
	cfg      Config
	replicas []*replica

	// BatchHook, when non-nil, runs after every global iteration (all
	// replicas synced). Experiments use it to trace convergence curves.
	BatchHook func(iteration int)

	iterCount int // global iterations since construction
}

// New validates cfg, builds the replicas (bit-identical initial weights),
// and returns the engine. AdjustBatch is forced on; tests that need the
// ablation flip it explicitly afterwards.
func New(cfg Config) (*Engine, error) {
	if cfg.Dataset == nil || cfg.Sampler == nil {
		return nil, fmt.Errorf("engine: dataset and sampler are required")
	}
	if cfg.BatchSize < 1 {
		return nil, fmt.Errorf("engine: batch size %d", cfg.BatchSize)
	}
	if cfg.NumProcs < 1 {
		return nil, fmt.Errorf("engine: NumProcs %d", cfg.NumProcs)
	}
	if cfg.SampleWorkers < 1 || cfg.TrainWorkers < 1 {
		return nil, fmt.Errorf("engine: worker counts must be ≥1, got s=%d t=%d", cfg.SampleWorkers, cfg.TrainWorkers)
	}
	if cfg.Model.Kind == "" {
		return nil, fmt.Errorf("engine: model spec required")
	}
	if cfg.Sources != nil && len(cfg.Sources) != cfg.NumProcs {
		return nil, fmt.Errorf("engine: %d sources for %d replicas", len(cfg.Sources), cfg.NumProcs)
	}
	if cfg.Sources == nil && (cfg.Dataset.Features == nil || cfg.Dataset.Labels == nil) {
		return nil, fmt.Errorf("engine: dataset has no features/labels and no replica sources were provided")
	}
	if cfg.SamplingRegime == RegimeLocal {
		if cfg.Sources == nil {
			return nil, fmt.Errorf("engine: the local sampling regime needs per-replica shard sources")
		}
		if len(cfg.LocalSamplers) != cfg.NumProcs || len(cfg.LocalTargets) != cfg.NumProcs {
			return nil, fmt.Errorf("engine: local regime wants %d samplers and target sets, got %d and %d",
				cfg.NumProcs, len(cfg.LocalSamplers), len(cfg.LocalTargets))
		}
	}
	cfg.AdjustBatch = true
	e := &Engine{cfg: cfg}
	degrees := nn.Degrees(cfg.Dataset.Graph)
	for r := 0; r < cfg.NumProcs; r++ {
		m, err := nn.NewModel(cfg.Model, degrees)
		if err != nil {
			return nil, err
		}
		// The default source draws gathered batches from the replica's
		// own buffer pool; step puts them back once consumed, closing
		// the recycle loop.
		src := DataSource(datasetSource{ds: cfg.Dataset, bufs: m.Buffers()})
		if cfg.Sources != nil {
			src = cfg.Sources[r]
		}
		rep := &replica{
			model:     m,
			opt:       nn.NewAdam(cfg.LR),
			trainPool: tensor.NewPool(cfg.TrainWorkers),
			source:    src,
		}
		if cfg.SamplingRegime == RegimeLocal {
			if _, ok := src.(GradientRouter); !ok {
				return nil, fmt.Errorf("engine: local regime replica %d source has no gradient reverse path", r)
			}
			// The caching wrapper makes the regime's locality pay:
			// partition-bounded batches hit a static working set, so
			// features cross the wire once per run and gradients once
			// per epoch.
			ls := newLocalSource(src)
			rep.source = ls
			rep.router = ls
		}
		e.replicas = append(e.replicas, rep)
	}
	return e, nil
}

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// SetAdjustBatch toggles the batch-size adjustment (see Config).
func (e *Engine) SetAdjustBatch(v bool) { e.cfg.AdjustBatch = v }

// Model returns replica r's model (replicas stay identical; tests verify).
func (e *Engine) Model(r int) *nn.GNN { return e.replicas[r].model }

// ParamSets exposes every replica's parameters, for consistency checks.
func (e *Engine) ParamSets() [][]*nn.Param {
	sets := make([][]*nn.Param, len(e.replicas))
	for r, rep := range e.replicas {
		sets[r] = rep.model.Params()
	}
	return sets
}

// RunEpoch trains one epoch and returns its summary.
func (e *Engine) RunEpoch(epoch int) (EpochResult, error) {
	start := time.Now()
	n := e.cfg.NumProcs
	ds := e.cfg.Dataset

	// Build per-replica job lists. With AdjustBatch each iteration is one
	// global batch split n ways; without it (ablation) each replica
	// consumes full-size batches from its own partition. The local
	// regime shuffles each replica's owned targets independently into
	// B/n-sized shares, preserving the effective global batch ≈ B.
	perReplicaJobs := make([][]prefetchJob, n)
	var numIters int
	if e.cfg.SamplingRegime == RegimeLocal {
		share := e.cfg.BatchSize / n
		if share < 1 {
			share = 1
		}
		for r := 0; r < n; r++ {
			batches := epochBatches(e.cfg.LocalTargets[r], share, seedFor(e.cfg.Seed, epoch, -2-r))
			for it, b := range batches {
				perReplicaJobs[r] = append(perReplicaJobs[r], prefetchJob{
					index: it, seed: seedFor(e.cfg.Seed, epoch, it*n+r), targets: b,
				})
			}
			if len(batches) > numIters {
				numIters = len(batches)
			}
		}
		// Shards own unequal train counts; pad the short replicas with
		// empty jobs (weight 0 in the all-reduce) to keep the barrier
		// square.
		for r := 0; r < n; r++ {
			for len(perReplicaJobs[r]) < numIters {
				perReplicaJobs[r] = append(perReplicaJobs[r], prefetchJob{index: len(perReplicaJobs[r])})
			}
		}
	} else if e.cfg.AdjustBatch {
		globalBatches := epochBatches(ds.TrainIdx, e.cfg.BatchSize, seedFor(e.cfg.Seed, epoch, -1))
		numIters = len(globalBatches)
		for it, gb := range globalBatches {
			shares := splitShares(gb, n)
			for r := 0; r < n; r++ {
				perReplicaJobs[r] = append(perReplicaJobs[r], prefetchJob{
					index:   it,
					seed:    seedFor(e.cfg.Seed, epoch, it*n+r),
					targets: shares[r],
				})
			}
		}
	} else {
		parts := make([][]graph.NodeID, n)
		for i, v := range ds.TrainIdx {
			parts[i%n] = append(parts[i%n], v)
		}
		for r := 0; r < n; r++ {
			batches := epochBatches(parts[r], e.cfg.BatchSize, seedFor(e.cfg.Seed, epoch, -2-r))
			for it, b := range batches {
				perReplicaJobs[r] = append(perReplicaJobs[r], prefetchJob{
					index: it, seed: seedFor(e.cfg.Seed, epoch, it*n+r), targets: b,
				})
				if it+1 > numIters {
					numIters = it + 1
				}
			}
		}
		// Pad shorter replicas with empty jobs so the barrier stays square.
		for r := 0; r < n; r++ {
			for len(perReplicaJobs[r]) < numIters {
				perReplicaJobs[r] = append(perReplicaJobs[r], prefetchJob{index: len(perReplicaJobs[r])})
			}
		}
	}

	prefetchers := make([]*prefetcher, n)
	for r := 0; r < n; r++ {
		var fetch fetchFunc
		if !e.cfg.NoOverlap {
			src := e.replicas[r].source
			fetch = func(mb *sampler.MiniBatch) (*tensor.Matrix, []int32, error) {
				x0, err := src.GatherFeatures(mb.InputNodes())
				if err != nil {
					return nil, nil, err
				}
				labels, err := src.TargetLabels(mb.Targets)
				if err != nil {
					return nil, nil, err
				}
				return x0, labels, nil
			}
		}
		samp := e.cfg.Sampler
		if e.cfg.SamplingRegime == RegimeLocal {
			samp = e.cfg.LocalSamplers[r]
		}
		prefetchers[r] = newFetchingPrefetcher(samp, perReplicaJobs[r], e.cfg.SampleWorkers, fetch)
	}
	// Closing on every exit path matters: an epoch aborted by a replica
	// (or remote-fetch) error must not strand workers parked on the
	// reorder buffer.
	defer func() {
		for r := 0; r < n; r++ {
			prefetchers[r].Close()
		}
	}()

	res := EpochResult{Epoch: epoch, NumIters: numIters}
	var lossSum float64
	var lossCount int
	sets := e.ParamSets()
	weights := make([]float64, n)

	for it := 0; it < numIters; it++ {
		var wg sync.WaitGroup
		for r := 0; r < n; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				e.replicas[r].step(prefetchers[r].NextData())
			}(r)
		}
		wg.Wait()
		anyWork := false
		for r := 0; r < n; r++ {
			rep := e.replicas[r]
			if rep.lastErr != nil {
				return res, fmt.Errorf("engine: replica %d: %w", r, rep.lastErr)
			}
			weights[r] = float64(rep.lastCount)
			if rep.lastCount > 0 {
				anyWork = true
				lossSum += rep.lastLoss * float64(rep.lastCount)
				lossCount += rep.lastCount
				res.BatchSeen += rep.lastCount
				res.Stats.Accumulate(rep.lastStats)
			}
		}
		if anyWork {
			if err := ddp.AllReduceMeanWeighted(sets, weights); err != nil {
				return res, err
			}
			for r := 0; r < n; r++ {
				e.replicas[r].opt.Step(sets[r])
			}
		}
		e.iterCount++
		if e.BatchHook != nil {
			e.BatchHook(e.iterCount)
		}
	}
	// Local regime: the epoch's accumulated input-feature gradients are
	// flushed to their owning replicas — every replica flushes before
	// any drains, so each drain sees the complete epoch — and drained
	// in a fixed order (replica ascending, ids ascending, contributors
	// ascending), making the digest deterministic across transports.
	// Features are frozen inputs here, so the collected sums serve as
	// an accounting/parity digest; a trainable embedding layer would
	// apply them to its owned rows at this point.
	if e.cfg.SamplingRegime == RegimeLocal {
		for r := 0; r < n; r++ {
			if ls, ok := e.replicas[r].source.(*localSource); ok {
				if err := ls.FlushGradients(); err != nil {
					return res, fmt.Errorf("engine: replica %d gradient flush: %w", r, err)
				}
			}
		}
		for r := 0; r < n; r++ {
			c, ok := e.replicas[r].source.(GradientCollector)
			if !ok {
				continue
			}
			ids, sums, err := c.CollectGradients()
			if err != nil {
				return res, fmt.Errorf("engine: replica %d gradient drain: %w", r, err)
			}
			res.GradNodes += int64(len(ids))
			if sums != nil {
				for i := range ids {
					for _, x := range sums.Row(i) {
						if x < 0 {
							x = -x
						}
						res.GradAbsSum += float64(x)
					}
				}
			}
		}
	}
	if lossCount > 0 {
		res.MeanLoss = lossSum / float64(lossCount)
	}
	res.Duration = time.Since(start)
	return res, nil
}

// step computes one replica's gradient contribution for a mini-batch,
// reading features and labels from the prefetched batch when the
// overlap gathered them ahead of time, or through the replica's data
// source otherwise. An empty share zeroes the gradients and reports
// weight 0.
func (rep *replica) step(bd batchData) {
	rep.model.ZeroGrad()
	rep.lastCount = 0
	rep.lastLoss = 0
	rep.lastStats = sampler.Stats{}
	rep.lastErr = nil
	mb := bd.mb
	if mb == nil || len(mb.Targets) == 0 {
		return
	}
	if bd.err != nil {
		rep.lastErr = bd.err
		return
	}
	x0, labels := bd.x0, bd.labels
	if x0 == nil {
		var err error
		x0, err = rep.source.GatherFeatures(mb.InputNodes())
		if err != nil {
			rep.lastErr = err
			return
		}
	}
	logits := rep.model.Forward(rep.trainPool, mb, x0)
	if labels == nil {
		var err error
		labels, err = rep.source.TargetLabels(mb.Targets)
		if err != nil {
			rep.lastErr = err
			return
		}
	}
	bufs := rep.model.Buffers()
	loss, dLogits := nn.SoftmaxCrossEntropyPooled(bufs, logits, labels)
	dX := rep.model.Backward(rep.trainPool, dLogits)
	// Local regime: hand the input-feature gradient to the router. All
	// input ids are passed; the local-regime source accumulates the
	// rows across the epoch and flushes them to their owners in one
	// batched exchange at epoch end, so boundary rows' credit reaches
	// the replica that owns them at a per-epoch (not per-batch) wire
	// cost.
	if rep.router != nil {
		if err := rep.router.ScatterGradients(mb.InputNodes(), dX); err != nil {
			rep.lastErr = err
			return
		}
	}
	// The input gradient is otherwise unused and the gathered features
	// and logit gradient are consumed; recycling all three through the
	// replica's buffer pool keeps the steady-state step free of
	// per-batch matrix allocations (DataSource matrices are
	// caller-owned by contract).
	bufs.Put(dX)
	bufs.Put(dLogits)
	bufs.Put(x0)
	rep.lastLoss = loss
	rep.lastCount = len(mb.Targets)
	rep.lastStats = mb.Stats
}

// ExportWeights returns a deep copy of replica 0's parameters, in the
// model's stable parameter order. The Multi-Process Engine uses this to
// carry weights across auto-tuner re-launches with a different process
// count.
func (e *Engine) ExportWeights() []*tensor.Matrix {
	params := e.replicas[0].model.Params()
	out := make([]*tensor.Matrix, len(params))
	for i, p := range params {
		out[i] = p.W.Clone()
	}
	return out
}

// ImportWeights loads weights (as produced by ExportWeights) into every
// replica, keeping them bit-identical.
func (e *Engine) ImportWeights(ws []*tensor.Matrix) error {
	for _, rep := range e.replicas {
		params := rep.model.Params()
		if len(params) != len(ws) {
			return fmt.Errorf("engine: ImportWeights got %d tensors, model has %d params", len(ws), len(params))
		}
		for i, p := range params {
			if p.W.Rows != ws[i].Rows || p.W.Cols != ws[i].Cols {
				return fmt.Errorf("engine: ImportWeights param %d shape mismatch", i)
			}
			p.W.CopyFrom(ws[i])
		}
	}
	return nil
}

// Evaluate returns replica 0's accuracy on the given node IDs, sampling
// evaluation batches with a fixed seed so results are deterministic.
// Features and labels flow through replica 0's data source, so sharded
// and single-store runs evaluate identically.
func (e *Engine) Evaluate(ids []graph.NodeID) float64 {
	acc, err := e.EvaluateErr(ids)
	if err != nil {
		return 0
	}
	return acc
}

// EvaluateErr is Evaluate with source errors surfaced (a sharded source
// can fail on an unmapped node; the in-memory source cannot).
func (e *Engine) EvaluateErr(ids []graph.NodeID) (float64, error) {
	if len(ids) == 0 {
		return 0, nil
	}
	const evalBatch = 256
	rep := e.replicas[0]
	correctWeighted := 0.0
	for lo := 0; lo < len(ids); lo += evalBatch {
		hi := lo + evalBatch
		if hi > len(ids) {
			hi = len(ids)
		}
		targets := ids[lo:hi]
		rng := newEvalRand(e.cfg.Seed, lo)
		mb := e.cfg.Sampler.Sample(rng, targets)
		x0, err := rep.source.GatherFeatures(mb.InputNodes())
		if err != nil {
			return 0, err
		}
		logits := rep.model.Forward(rep.trainPool, mb, x0)
		labels, err := rep.source.TargetLabels(targets)
		if err != nil {
			return 0, err
		}
		correctWeighted += nn.Accuracy(logits, labels) * float64(len(targets))
		rep.model.Buffers().Put(x0)
	}
	return correctWeighted / float64(len(ids)), nil
}
