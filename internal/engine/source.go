package engine

import (
	"fmt"
	"sort"

	"argo/internal/ddp"
	"argo/internal/graph"
	"argo/internal/nn"
	"argo/internal/tensor"
)

// DataSource feeds one replica's feature and label lookups. The default
// source reads the global in-memory dataset; the sharded source reads
// the replica's own mapped shards and pulls foreign rows through a
// ddp.HaloExchange. The engine's training step is identical either way
// — same values in, same gradients out — which is what makes sharded
// training loss-equivalent to single-store training.
type DataSource interface {
	// GatherFeatures returns the feature rows of ids, in order. The
	// returned matrix is freshly assembled and owned by the caller,
	// which may recycle it into a buffer pool once consumed.
	GatherFeatures(ids []graph.NodeID) (*tensor.Matrix, error)
	// TargetLabels returns the labels of ids, in order.
	TargetLabels(ids []graph.NodeID) ([]int32, error)
}

// datasetSource serves every replica from the one materialised dataset.
// bufs, when non-nil, recycles gathered batches (the replica puts them
// back after each step); the pool is concurrency-safe, so the overlap
// path's sampling-worker gathers can share it with the training step.
type datasetSource struct {
	ds   *graph.Dataset
	bufs *tensor.BufPool
}

func (s datasetSource) GatherFeatures(ids []graph.NodeID) (*tensor.Matrix, error) {
	return nn.GatherPooled(s.bufs, s.ds.Features, ids), nil
}

func (s datasetSource) TargetLabels(ids []graph.NodeID) ([]int32, error) {
	out := make([]int32, len(ids))
	for i, v := range ids {
		out[i] = s.ds.Labels[v]
	}
	return out, nil
}

// GradientRouter is the optional reverse path of a DataSource: sharded
// sources route per-row gradient contributions back to the rows' owning
// replicas (ddp.HaloExchange.ScatterGradients), which is what a
// partition-local sampler needs to train without assembling the global
// topology. The in-memory dataset source has no reverse path.
type GradientRouter interface {
	// ScatterGradients sends grads (len(ids)×featDim, row i the
	// contribution to ids[i]) to the owners of ids.
	ScatterGradients(ids []graph.NodeID, grads *tensor.Matrix) error
}

// GradientCollector drains the gradient contributions other replicas
// routed to this replica's owned rows since the previous drain. The
// returned ids are ascending and the per-row sums are reduced in
// ascending contributor order, so the drain is deterministic for a
// deterministic schedule regardless of transport or message arrival
// order.
type GradientCollector interface {
	// CollectGradients returns (ids, len(ids)×featDim sums, error);
	// (nil, nil, nil) when nothing accumulated.
	CollectGradients() ([]graph.NodeID, *tensor.Matrix, error)
}

// shardSource is one replica's view of a sharded run: every lookup goes
// through the exchange, which serves owned rows locally and foreign
// rows from their owning replica in batched per-peer messages.
type shardSource struct {
	ex      *ddp.HaloExchange
	replica int
}

func (s shardSource) GatherFeatures(ids []graph.NodeID) (*tensor.Matrix, error) {
	return s.ex.GatherFeatures(s.replica, ids)
}

func (s shardSource) TargetLabels(ids []graph.NodeID) ([]int32, error) {
	return s.ex.TargetLabels(s.replica, ids)
}

func (s shardSource) ScatterGradients(ids []graph.NodeID, grads *tensor.Matrix) error {
	return s.ex.ScatterGradients(s.replica, ids, grads)
}

func (s shardSource) CollectGradients() ([]graph.NodeID, *tensor.Matrix, error) {
	return s.ex.CollectGradients(s.replica)
}

// replicaShard is one shard materialised into its owning replica's
// memory: the owned id list plus the shard-resident features/labels.
type replicaShard struct {
	owned  []graph.NodeID
	feats  *tensor.Matrix
	labels []int32
}

// row returns the local row index of global node v, or -1.
func (rs *replicaShard) row(v graph.NodeID) int {
	i := sort.Search(len(rs.owned), func(i int) bool { return rs.owned[i] >= v })
	if i < len(rs.owned) && rs.owned[i] == v {
		return i
	}
	return -1
}

// ShardSourceOptions configures NewShardSourcesOpts.
type ShardSourceOptions struct {
	// Transport names the ddp transport carrying the exchange: "" or
	// "inproc" for direct calls, "tcp" for loopback sockets.
	Transport string
}

// NewShardSources maps a shard set onto numProcs replicas over the
// in-process transport. See NewShardSourcesOpts.
func NewShardSources(ss *graph.ShardSet, numProcs int) ([]DataSource, *ddp.HaloExchange, error) {
	return NewShardSourcesOpts(ss, numProcs, ShardSourceOptions{})
}

// NewShardSourcesOpts maps a shard set onto numProcs replicas: shard s
// is owned by replica s mod numProcs, each replica materialises only
// its own shards' feature and label sections (lazy / mmap-backed for
// file-backed sets — the other shards' feature bytes are never read by
// this replica), and all lookups flow through the returned
// HaloExchange, whose stats expose the cross-replica traffic a real
// multi-node run would put on the wire. The exchange batches one
// message per (peer, gather) over the selected transport, with buffer
// sizes planned from the manifest's per-shard cut-arc counts; the
// caller owns the exchange and must Close it (which closes the
// transport).
func NewShardSourcesOpts(ss *graph.ShardSet, numProcs int, opt ShardSourceOptions) ([]DataSource, *ddp.HaloExchange, error) {
	if numProcs < 1 {
		return nil, nil, fmt.Errorf("engine: %d replicas for a shard set", numProcs)
	}
	k := ss.K()
	featDim := ss.Manifest.FeatDim
	perShard := make([]*replicaShard, k)
	for s := 0; s < k; s++ {
		sm, err := ss.ShardMap(s)
		if err != nil {
			return nil, nil, err
		}
		lz, err := ss.Shard(s)
		if err != nil {
			return nil, nil, err
		}
		feats, err := lz.Features()
		if err != nil {
			return nil, nil, err
		}
		labels, err := lz.Labels()
		if err != nil {
			return nil, nil, err
		}
		if feats.Cols != featDim || feats.Rows < len(sm.Owned) || len(labels) < len(sm.Owned) {
			return nil, nil, fmt.Errorf("engine: shard %d features/labels smaller than its owned set", s)
		}
		perShard[s] = &replicaShard{owned: sm.Owned, feats: feats, labels: labels}
	}

	owner := func(v graph.NodeID) (int, error) {
		s, err := ss.Owner(v)
		if err != nil {
			return 0, err
		}
		return s % numProcs, nil
	}
	// Per-replica servers look only inside the replica's own shards.
	serveFeat := make([]func(graph.NodeID) ([]float32, error), numProcs)
	serveLabel := make([]func(graph.NodeID) (int32, error), numProcs)
	for r := 0; r < numProcs; r++ {
		var mine []*replicaShard
		for s := r; s < k; s += numProcs {
			mine = append(mine, perShard[s])
		}
		find := func(v graph.NodeID) (*replicaShard, int, error) {
			for _, rs := range mine {
				if i := rs.row(v); i >= 0 {
					return rs, i, nil
				}
			}
			return nil, 0, fmt.Errorf("engine: node %d not owned by any mapped shard", v)
		}
		serveFeat[r] = func(v graph.NodeID) ([]float32, error) {
			rs, i, err := find(v)
			if err != nil {
				return nil, err
			}
			return rs.feats.Row(i), nil
		}
		serveLabel[r] = func(v graph.NodeID) (int32, error) {
			rs, i, err := find(v)
			if err != nil {
				return 0, err
			}
			return rs.labels[i], nil
		}
	}
	tr, err := ddp.NewTransport(opt.Transport)
	if err != nil {
		return nil, nil, err
	}
	// The wire dtype is negotiated from the store dtype alone: an fp16
	// shard set's rows are fp16-exact, so shipping them as fp16 bits is
	// lossless and transport-invariant. (An fp16 wire over an fp32 store
	// would lose bits only when a message crosses address spaces, making
	// results transport-dependent — so it is never enabled.)
	wireDtype, err := graph.ParseFeatDtype(ss.Manifest.FeatDtype)
	if err != nil {
		tr.Close()
		return nil, nil, err
	}
	ex, err := ddp.NewHaloExchangeOpts(numProcs, featDim, owner, serveFeat, serveLabel, ddp.ExchangeOptions{
		Transport: tr,
		Plan:      ddp.PlanFromCuts(ss.Manifest.ReplicaCutArcs(numProcs)),
		WireDtype: wireDtype,
	})
	if err != nil {
		tr.Close()
		return nil, nil, err
	}
	sources := make([]DataSource, numProcs)
	for r := range sources {
		sources[r] = shardSource{ex: ex, replica: r}
	}
	return sources, ex, nil
}
