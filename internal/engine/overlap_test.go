package engine

import (
	"fmt"
	"math"
	"runtime"
	"testing"
	"time"

	"argo/internal/graph"
	"argo/internal/sampler"
	"argo/internal/tensor"
)

// runShardedEpochs trains `epochs` epochs of the sharded test workload
// with the given transport and overlap setting, returning the loss
// history, the final weights, and the exchange.
func runShardedEpochs(t *testing.T, ds *graph.Dataset, numProcs, epochs int, transport string, noOverlap bool) ([]float64, []*tensor.Matrix, *Engine) {
	t.Helper()
	ss, err := graph.ShardSetFromDataset(ds, graph.ShardOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ss.Close() })
	skel, err := ss.Skeleton()
	if err != nil {
		t.Fatal(err)
	}
	sources, ex, err := NewShardSourcesOpts(ss, numProcs, ShardSourceOptions{Transport: transport})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ex.Close() })
	cfg := shardedEngineConfig(skel, numProcs)
	cfg.Sampler = sampler.NewNeighbor(skel.Graph, []int{5, 4, 3})
	cfg.Sources = sources
	cfg.NoOverlap = noOverlap
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var losses []float64
	for ep := 0; ep < epochs; ep++ {
		res, err := eng.RunEpoch(ep)
		if err != nil {
			t.Fatal(err)
		}
		losses = append(losses, res.MeanLoss)
	}
	return losses, eng.ExportWeights(), eng
}

// The hard invariant of the refactor: batched + overlapped training —
// in-process and over loopback TCP — bit-matches the per-row baseline,
// which itself bit-matches single-store training (pinned by
// TestShardedTrainingMatchesSingleStore). All four variants must agree
// on every epoch loss and every final weight, bit for bit.
func TestBatchedOverlappedParityAcrossTransports(t *testing.T) {
	ds := shardedTestDataset(t)
	const numProcs, epochs = 2, 3

	base, err := New(shardedEngineConfig(ds, numProcs))
	if err != nil {
		t.Fatal(err)
	}
	var baseLoss []float64
	for ep := 0; ep < epochs; ep++ {
		res, err := base.RunEpoch(ep)
		if err != nil {
			t.Fatal(err)
		}
		baseLoss = append(baseLoss, res.MeanLoss)
	}
	baseW := base.ExportWeights()

	variants := []struct {
		name      string
		transport string
		noOverlap bool
	}{
		{"inproc-overlap", "inproc", false},
		{"inproc-inline", "inproc", true},
		{"tcp-overlap", "tcp", false},
		{"tcp-inline", "tcp", true},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			losses, weights, _ := runShardedEpochs(t, ds, numProcs, epochs, v.transport, v.noOverlap)
			for ep := range losses {
				if losses[ep] != baseLoss[ep] {
					t.Fatalf("epoch %d: loss %v, single-store %v (diff %g)",
						ep, losses[ep], baseLoss[ep], math.Abs(losses[ep]-baseLoss[ep]))
				}
			}
			for i := range weights {
				if d := weights[i].MaxAbsDiff(baseW[i]); d != 0 {
					t.Fatalf("weight tensor %d diverged by %v", i, d)
				}
			}
		})
	}
}

// Overlap must not change what traffic is counted — only when the
// gathers happen.
func TestOverlapTrafficInvariant(t *testing.T) {
	ds := shardedTestDataset(t)
	_, _, eager := runShardedEpochs(t, ds, 2, 2, "inproc", false)
	_, _, inline := runShardedEpochs(t, ds, 2, 2, "inproc", true)
	exEager := eager.replicas[0].source.(shardSource).ex
	exInline := inline.replicas[0].source.(shardSource).ex
	a, b := exEager.TotalStats(), exInline.TotalStats()
	if a != b {
		t.Fatalf("overlap changed traffic: %+v vs %+v", a, b)
	}
	if a.Messages == 0 {
		t.Fatal("no batched messages counted")
	}
}

// The acceptance gate for batching: a training epoch must send at least
// 2× fewer exchange messages than the per-row baseline (which sent one
// message per remote row).
func TestBatchedExchangeMessageReduction(t *testing.T) {
	ds := shardedTestDataset(t)
	_, _, eng := runShardedEpochs(t, ds, 2, 1, "inproc", false)
	total := eng.replicas[0].source.(shardSource).ex.TotalStats()
	if total.RemoteRows == 0 || total.Messages == 0 {
		t.Fatalf("no exchange traffic recorded: %+v", total)
	}
	if total.Messages*2 > total.RemoteRows {
		t.Fatalf("batched exchange sent %d messages for %d remote rows — less than the required 2× reduction over per-row",
			total.Messages, total.RemoteRows)
	}
	t.Logf("per-row baseline %d messages → batched %d (%.1f× reduction)",
		total.RemoteRows, total.Messages, float64(total.RemoteRows)/float64(total.Messages))
}

// A shard source's reverse path routes halo gradients to owners through
// the engine seam (the GradientRouter surface a partition-local sampler
// will use).
func TestShardSourceGradientRouter(t *testing.T) {
	ds := shardedTestDataset(t)
	ss, err := graph.ShardSetFromDataset(ds, graph.ShardOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	sources, ex, err := NewShardSources(ss, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()
	router, ok := sources[0].(GradientRouter)
	if !ok {
		t.Fatal("shard source does not expose the gradient reverse path")
	}
	ids := []graph.NodeID{0, 1, 2, 3, 4, 5}
	grads := tensor.New(len(ids), ss.Manifest.FeatDim)
	for i := range ids {
		grads.Row(i)[0] = float32(i + 1)
	}
	if err := router.ScatterGradients(ids, grads); err != nil {
		t.Fatal(err)
	}
	var collected int
	for r := 0; r < 2; r++ {
		gids, g, err := ex.CollectGradients(r)
		if err != nil {
			t.Fatal(err)
		}
		collected += len(gids)
		for i, v := range gids {
			o, err := ss.Owner(v)
			if err != nil {
				t.Fatal(err)
			}
			if o%2 != r {
				t.Fatalf("replica %d collected gradient for node %d owned by replica %d", r, v, o%2)
			}
			var want float32
			for j, id := range ids {
				if id == v {
					want = float32(j + 1)
				}
			}
			if g.Row(i)[0] != want {
				t.Fatalf("node %d gradient %v, want %v", v, g.Row(i)[0], want)
			}
		}
	}
	if collected != len(ids) {
		t.Fatalf("collected %d gradient rows, scattered %d", collected, len(ids))
	}
	if _, ok := DataSource(datasetSource{ds: ds}).(GradientRouter); ok {
		t.Fatal("in-memory source should not claim a reverse path")
	}
}

// A fetch error surfacing from the prefetch stage must abort the epoch
// with the error — and the abort must not strand prefetch goroutines
// (workers park on the reorder buffer when consumption stops early).
func TestOverlapFetchErrorPropagates(t *testing.T) {
	ds := shardedTestDataset(t)
	cfg := shardedEngineConfig(ds, 1)
	cfg.SampleWorkers = 4
	cfg.Dataset = &graph.Dataset{
		Spec: ds.Spec, Graph: ds.Graph, NumClasses: ds.NumClasses,
		TrainIdx: ds.TrainIdx, ValIdx: ds.ValIdx, TestIdx: ds.TestIdx,
	}
	cfg.Sources = []DataSource{failingSource{}}
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	if _, err := eng.RunEpoch(0); err == nil {
		t.Fatal("fetch error swallowed by the overlap path")
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("aborted epoch leaked goroutines: %d before, %d after", before, after)
	}
}

type failingSource struct{}

func (failingSource) GatherFeatures(ids []graph.NodeID) (*tensor.Matrix, error) {
	return nil, fmt.Errorf("synthetic fetch failure")
}
func (failingSource) TargetLabels(ids []graph.NodeID) ([]int32, error) {
	return nil, fmt.Errorf("synthetic fetch failure")
}
