package experiments

import (
	"fmt"
	"io"

	"argo/internal/graph"
	"argo/internal/platform"
	"argo/internal/platsim"
	"argo/internal/sampler"
	"argo/internal/tablefmt"
)

// Fig6Data holds the workload-inflation and bandwidth study (paper
// Fig. 6): as the process count grows, the total sampled workload rises
// (smaller batches share fewer neighbours) while achieved memory
// bandwidth rises and then saturates.
type Fig6Data struct {
	Procs []int
	// Simulated at paper scale:
	SimEdges []float64
	SimBWGBs []float64
	// Measured with the real Go sampler on the scaled dataset:
	RealInputNodes []int64
	RealEdges      []int64
}

// Fig6 reproduces Fig. 6 twice over: analytically at paper scale on the
// simulator, and empirically by running the real neighbor sampler on the
// scaled ogbn-products instance with the batch split n ways.
func Fig6(w io.Writer) (Fig6Data, error) {
	data := Fig6Data{Procs: []int{1, 2, 4, 8, 16}}

	// Simulator at paper scale.
	setup := Setup{Lib: platsim.DGL, Plat: platform.IceLake4S, Sampler: platsim.Neighbor, Model: platsim.SAGE, Dataset: "ogbn-products"}
	sc := setup.Scenario()
	for _, n := range data.Procs {
		perProc := 112 / n
		s := perProc / 4
		if s < 1 {
			s = 1
		}
		m, err := platsim.Simulate(sc, platsim.SimConfig{
			Procs: n, SampleCores: s, TrainCores: perProc - s, MaxIters: 30,
		})
		if err != nil {
			return data, err
		}
		data.SimEdges = append(data.SimEdges, m.SampledEdges)
		data.SimBWGBs = append(data.SimBWGBs, m.AvgBandwidthGBs)
	}

	// Real sampler on the scaled instance.
	ds, err := graph.BuildByName("ogbn-products", 1)
	if err != nil {
		return data, err
	}
	ns := sampler.NewNeighbor(ds.Graph, []int{15, 10, 5})
	const globalBatch = 256
	for _, n := range data.Procs {
		stats := sampler.EpochWorkload(ns, ds.TrainIdx, globalBatch, n, 7)
		data.RealInputNodes = append(data.RealInputNodes, stats.InputNodes)
		data.RealEdges = append(data.RealEdges, stats.SampledEdges)
	}

	tb := tablefmt.New("Fig 6: workload and bandwidth vs number of processes (Neighbor-SAGE, ogbn-products)",
		"processes", "sim edges/epoch", "sim bandwidth GB/s", "real edges/epoch (scaled)", "real input nodes (scaled)")
	for i, n := range data.Procs {
		tb.Addf(n, fmt.Sprintf("%.3g", data.SimEdges[i]), data.SimBWGBs[i],
			fmt.Sprint(data.RealEdges[i]), fmt.Sprint(data.RealInputNodes[i]))
	}
	_, err = io.WriteString(w, tb.String())
	return data, err
}
