package experiments

import (
	"fmt"
	"io"
	"math"

	"argo/internal/platform"
	"argo/internal/platsim"
	"argo/internal/search"
	"argo/internal/tablefmt"
)

// HeatmapData is one (processes × sampling-cores) epoch-time surface at a
// fixed training-core count — one panel of the paper's Fig. 7 (and, for
// the Reddit setup, Fig. 12).
type HeatmapData struct {
	Setup   Setup
	TrainC  int
	Procs   []int
	Samples []int
	// Seconds[i][j] is the epoch time at Procs[i], Samples[j]; +Inf marks
	// infeasible corners.
	Seconds [][]float64
	Best    search.Config
	BestSec float64
}

// Heatmap sweeps the (n, s) plane at fixed t for any setup — the primitive
// behind Fig. 7, Fig. 12 and cmd/argo-sweep.
func Heatmap(setup Setup, trainCores int) (HeatmapData, error) {
	hd := HeatmapData{Setup: setup, TrainC: trainCores, BestSec: math.Inf(1)}
	sc := setup.Scenario()
	obj := platsim.NewObjective(sc)
	for n := 1; n <= 8; n++ {
		hd.Procs = append(hd.Procs, n)
	}
	for s := 1; s <= 10; s++ {
		hd.Samples = append(hd.Samples, s)
	}
	for _, n := range hd.Procs {
		row := make([]float64, 0, len(hd.Samples))
		for _, s := range hd.Samples {
			cfg := search.Config{Procs: n, SampleCores: s, TrainCores: trainCores}
			v := math.Inf(1)
			if cfg.TotalCores() <= setup.Plat.TotalCores() {
				v = obj.Evaluate(cfg)
			}
			if v < hd.BestSec {
				hd.Best, hd.BestSec = cfg, v
			}
			row = append(row, v)
		}
		hd.Seconds = append(hd.Seconds, row)
	}
	return hd, nil
}

// Render writes the heatmap as a text grid.
func (hd HeatmapData) Render(w io.Writer, title string) {
	tb := tablefmt.New(title, append([]string{"n\\s"}, intHeaders(hd.Samples)...)...)
	for i, n := range hd.Procs {
		row := []string{fmt.Sprint(n)}
		for _, v := range hd.Seconds[i] {
			if math.IsInf(v, 1) {
				row = append(row, "-")
			} else {
				row = append(row, tablefmt.F(v))
			}
		}
		tb.Add(row...)
	}
	io.WriteString(w, tb.String())
	fmt.Fprintf(w, "optimum: %s at %.3fs (t=%d fixed)\n\n", hd.Best, hd.BestSec, hd.TrainC)
}

func intHeaders(vals []int) []string {
	out := make([]string, len(vals))
	for i, v := range vals {
		out[i] = fmt.Sprint(v)
	}
	return out
}

// Fig7 reproduces Fig. 7: the epoch-time landscape across six setups
// (sampler-model × dataset × platform), showing that the optimal
// configuration varies with every factor, which is why a per-setup online
// tuner is needed.
func Fig7(w io.Writer) ([]HeatmapData, error) {
	panels := []Setup{
		{Lib: platsim.DGL, Plat: platform.IceLake4S, Sampler: platsim.Neighbor, Model: platsim.SAGE, Dataset: "ogbn-products"},
		{Lib: platsim.DGL, Plat: platform.IceLake4S, Sampler: platsim.Neighbor, Model: platsim.SAGE, Dataset: "reddit"},
		{Lib: platsim.DGL, Plat: platform.SapphireRapids2S, Sampler: platsim.Neighbor, Model: platsim.SAGE, Dataset: "ogbn-products"},
		{Lib: platsim.DGL, Plat: platform.IceLake4S, Sampler: platsim.Shadow, Model: platsim.GCN, Dataset: "reddit"},
		{Lib: platsim.DGL, Plat: platform.SapphireRapids2S, Sampler: platsim.Shadow, Model: platsim.GCN, Dataset: "ogbn-products"},
		{Lib: platsim.DGL, Plat: platform.SapphireRapids2S, Sampler: platsim.Shadow, Model: platsim.GCN, Dataset: "reddit"},
	}
	fmt.Fprintln(w, "== Fig 7: epoch time (s) across setups; x = sampling cores per process, y = processes ==")
	var out []HeatmapData
	for _, p := range panels {
		trainC := 6 // fixed for 2-D visualisation, like the paper
		hd, err := Heatmap(p, trainC)
		if err != nil {
			return out, err
		}
		hd.Render(w, fmt.Sprintf("%s / %s / %s", p.SamplerModel(), p.Dataset, p.Plat.Name))
		out = append(out, hd)
	}
	return out, nil
}

// Fig12 reproduces Fig. 12: the full design-space surface for
// Neighbor-SAGE on Reddit (Ice Lake), the example the paper uses to show
// the landscape the auto-tuner navigates.
func Fig12(w io.Writer) (HeatmapData, error) {
	setup := Setup{Lib: platsim.DGL, Plat: platform.IceLake4S, Sampler: platsim.Neighbor, Model: platsim.SAGE, Dataset: "reddit"}
	hd, err := Heatmap(setup, 6)
	if err != nil {
		return hd, err
	}
	fmt.Fprintln(w, "== Fig 12: design-space surface (Neighbor-SAGE, Reddit, Ice Lake) ==")
	hd.Render(w, "epoch time (s)")
	return hd, nil
}
