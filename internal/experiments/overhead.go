package experiments

import (
	"io"
	"runtime"
	"time"

	"argo/internal/bayesopt"
	"argo/internal/graph"
	"argo/internal/platform"
	"argo/internal/platsim"
	"argo/internal/search"
	"argo/internal/tablefmt"
)

// OverheadRow profiles the online auto-tuner on one platform/budget
// combination (paper §VI-D: the overhead depends only on the search-space
// size, not on the model or dataset).
type OverheadRow struct {
	Platform  string
	Budget    int
	SpaceSize int
	Overhead  time.Duration
	AllocMB   float64
}

// TunerOverhead measures the surrogate-fitting and acquisition time and
// the memory footprint of a full online-tuning run per platform.
func TunerOverhead(w io.Writer) ([]OverheadRow, error) {
	var rows []OverheadRow
	ds, err := graph.Spec("ogbn-products")
	if err != nil {
		return nil, err
	}
	for _, plat := range []platform.Spec{platform.IceLake4S, platform.SapphireRapids2S} {
		for _, sm := range samplerModels {
			sc := platsim.Scenario{Platform: plat, Library: platsim.DGL, Sampler: sm.Sampler, Model: sm.Model, Dataset: ds}
			sp := search.DefaultSpace(plat.TotalCores())
			budget := searchBudget(plat, sm.Sampler)
			obj := platsim.NewObjective(sc)

			var before, after runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&before)
			tuner := bayesopt.NewTuner(sp, budget, 7)
			tuner.Run(obj)
			runtime.ReadMemStats(&after)

			rows = append(rows, OverheadRow{
				Platform:  plat.Name,
				Budget:    budget,
				SpaceSize: sp.Size(),
				Overhead:  tuner.Overhead(),
				AllocMB:   float64(after.TotalAlloc-before.TotalAlloc) / (1 << 20),
			})
		}
	}
	tb := tablefmt.New("Auto-tuner overhead (paper §VI-D; larger spaces cost more)",
		"platform", "space", "searches", "tuner time", "allocations MB")
	for _, r := range rows {
		tb.Addf(r.Platform, r.SpaceSize, r.Budget, r.Overhead.String(), r.AllocMB)
	}
	_, err = io.WriteString(w, tb.String())
	return rows, err
}
