package experiments

import (
	"io"
	"math/rand"
	"time"

	"argo/internal/graph"
	"argo/internal/tablefmt"
)

// PartitionRow compares one data-splitting strategy (paper §VII-A).
type PartitionRow struct {
	Strategy  string
	EdgeCut   int64
	Balance   float64
	BuildTime time.Duration
}

// PartitionAblation reproduces the §VII-A discussion: a METIS-style
// balanced partitioner (greedy BFS here) yields a far lower edge cut than
// ARGO's random split, at a partitioning cost that must be re-paid every
// time the auto-tuner changes the process count — which is why ARGO keeps
// the random split.
func PartitionAblation(w io.Writer) ([]PartitionRow, error) {
	ds, err := graph.BuildByName("ogbn-products", 5)
	if err != nil {
		return nil, err
	}
	const parts = 8
	var rows []PartitionRow

	start := time.Now()
	rp := graph.RandomPartition(ds.Graph, parts, rand.New(rand.NewSource(1)))
	rows = append(rows, PartitionRow{
		Strategy: "random (ARGO default)", EdgeCut: rp.EdgeCut(ds.Graph),
		Balance: rp.Balance(ds.Graph), BuildTime: time.Since(start),
	})

	start = time.Now()
	gp := graph.GreedyPartition(ds.Graph, parts)
	rows = append(rows, PartitionRow{
		Strategy: "greedy BFS (METIS stand-in)", EdgeCut: gp.EdgeCut(ds.Graph),
		Balance: gp.Balance(ds.Graph), BuildTime: time.Since(start),
	})

	tb := tablefmt.New("§VII-A data-splitting ablation (ogbn-products scaled, 8 parts)",
		"strategy", "edge cut", "balance", "partition time")
	for _, r := range rows {
		tb.Addf(r.Strategy, r.EdgeCut, r.Balance, r.BuildTime.String())
	}
	_, err = io.WriteString(w, tb.String())
	return rows, err
}
