package experiments

import (
	"fmt"
	"io"

	"argo/internal/engine"
	"argo/internal/graph"
	"argo/internal/nn"
	"argo/internal/sampler"
	"argo/internal/tablefmt"
)

// Fig9Curve is one convergence curve: validation accuracy sampled every
// few mini-batches.
type Fig9Curve struct {
	Label    string
	Batches  []int
	Accuracy []float64
}

// Fig9Data holds the semantics-preservation study (paper Fig. 9): the
// convergence curves of ARGO with 2/4/8 processes overlap the
// single-process baseline because the effective batch size is unchanged.
type Fig9Data struct {
	Curves []Fig9Curve
}

// fig9Epochs controls how long the real training runs; experiments use
// the full default, and fast unit tests may run a trimmed variant through
// fig9 directly.
const fig9Epochs = 12

// Fig9 trains the scaled ogbn-products instance for real — no simulation
// — with 1, 2, 4 and 8 processes and records accuracy against the number
// of executed global mini-batches.
func Fig9(w io.Writer) (Fig9Data, error) {
	return fig9(w, fig9Epochs)
}

func fig9(w io.Writer, epochs int) (Fig9Data, error) {
	var data Fig9Data
	ds, err := graph.BuildByName("ogbn-products", 3)
	if err != nil {
		return data, err
	}
	for _, n := range []int{1, 2, 4, 8} {
		label := fmt.Sprintf("ARGO:%d", n)
		if n == 1 {
			label = "DGL"
		}
		e, err := engine.New(engine.Config{
			Dataset:       ds,
			Sampler:       sampler.NewNeighbor(ds.Graph, []int{15, 10, 5}),
			Model:         nn.ModelSpec{Kind: nn.KindSAGE, Dims: []int{ds.Spec.ScaledF0, ds.Spec.ScaledHidden, ds.Spec.ScaledHidden, ds.NumClasses}, Seed: 21},
			BatchSize:     64,
			LR:            0.01,
			NumProcs:      n,
			SampleWorkers: 1,
			TrainWorkers:  1,
			Seed:          33,
		})
		if err != nil {
			return data, err
		}
		curve := Fig9Curve{Label: label}
		evalEvery := 4
		e.BatchHook = func(iter int) {
			if iter%evalEvery != 0 {
				return
			}
			curve.Batches = append(curve.Batches, iter)
			curve.Accuracy = append(curve.Accuracy, e.Evaluate(ds.ValIdx))
		}
		for ep := 0; ep < epochs; ep++ {
			if _, err := e.RunEpoch(ep); err != nil {
				return data, err
			}
		}
		data.Curves = append(data.Curves, curve)
	}

	tb := tablefmt.New("Fig 9: accuracy vs batch count (Neighbor-SAGE, ogbn-products scaled, real training)",
		append([]string{"batches"}, curveLabels(data.Curves)...)...)
	if len(data.Curves) > 0 {
		for i, b := range data.Curves[0].Batches {
			row := []string{fmt.Sprint(b)}
			for _, c := range data.Curves {
				if i < len(c.Accuracy) {
					row = append(row, tablefmt.F(c.Accuracy[i]))
				} else {
					row = append(row, "")
				}
			}
			tb.Add(row...)
		}
	}
	_, err = io.WriteString(w, tb.String())
	return data, err
}

func curveLabels(curves []Fig9Curve) []string {
	out := make([]string, len(curves))
	for i, c := range curves {
		out[i] = c.Label
	}
	return out
}
