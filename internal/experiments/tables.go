package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"argo/internal/anneal"
	"argo/internal/bayesopt"
	"argo/internal/platform"
	"argo/internal/platsim"
	"argo/internal/search"
	"argo/internal/tablefmt"
)

// epochNoise is the relative epoch-time measurement jitter applied to
// search objectives; the paper's ±stddev columns average 5 runs.
const epochNoise = 0.02

// tableSeeds are the per-run noise/search seeds (5 runs, like the paper).
var tableSeeds = []int64{1, 2, 3, 4, 5}

// TableRow is one line of Table IV/V: the epoch time of the configuration
// found by each search strategy, with the exhaustive optimum as 1×.
type TableRow struct {
	Platform     string
	SamplerModel string
	Dataset      string
	Budget       int

	Exhaustive    float64
	ExhaustiveCfg search.Config
	Default       float64
	SAMean, SAStd float64
	Tuner         float64
	TunerStd      float64
}

// TableData holds one full table.
type TableData struct {
	Library string
	Rows    []TableRow
}

// TableIV reproduces Table IV: epoch time of the configuration found by
// Exhaustive / Default / Simulated Annealing / Auto-Tuner, DGL backend.
func TableIV(w io.Writer) (TableData, error) { return searchTable(w, platsim.DGL, "Table IV") }

// TableV reproduces Table V for the PyG backend.
func TableV(w io.Writer) (TableData, error) { return searchTable(w, platsim.PyG, "Table V") }

func searchTable(w io.Writer, lib platsim.Profile, title string) (TableData, error) {
	data := TableData{Library: lib.Name}
	for _, plat := range platforms {
		for _, sm := range samplerModels {
			for _, dataset := range datasets {
				setup := Setup{Lib: lib, Plat: plat, Sampler: sm.Sampler, Model: sm.Model, Dataset: dataset}
				row, err := searchRow(setup)
				if err != nil {
					return data, err
				}
				data.Rows = append(data.Rows, row)
			}
		}
	}
	tb := tablefmt.New(fmt.Sprintf("%s: epoch time (s) of the configuration found (%s)", title, lib.Name),
		"platform", "sampler-model", "dataset", "exhaustive", "default", "sim. anneal.", "auto-tuner")
	for _, r := range data.Rows {
		norm := func(v float64) string {
			return fmt.Sprintf("%s (%s)", tablefmt.F(v), tablefmt.Ratio(r.Exhaustive/v))
		}
		tb.Add(r.Platform, r.SamplerModel, r.Dataset,
			fmt.Sprintf("%s (1x)", tablefmt.F(r.Exhaustive)),
			norm(r.Default),
			fmt.Sprintf("%s ± %s (%s)", tablefmt.F(r.SAMean), tablefmt.F(r.SAStd), tablefmt.Ratio(r.Exhaustive/r.SAMean)),
			norm(r.Tuner),
		)
	}
	_, err := io.WriteString(w, tb.String())
	return data, err
}

// searchRow runs the four strategies for one setup.
func searchRow(setup Setup) (TableRow, error) {
	sc := setup.Scenario()
	sp := search.DefaultSpace(setup.Plat.TotalCores())
	budget := searchBudget(setup.Plat, setup.Sampler)
	row := TableRow{
		Platform:     setup.Plat.Name,
		SamplerModel: setup.SamplerModel(),
		Dataset:      setup.Dataset,
		Budget:       budget,
	}

	clean := platsim.NewObjective(sc)
	exh := search.Exhaustive(sp, clean)
	row.Exhaustive, row.ExhaustiveCfg = exh.BestTime, exh.Best

	def, err := platsim.BaselineEpoch(sc, setup.Plat.TotalCores())
	if err != nil {
		return row, err
	}
	row.Default = def

	// SA and the auto-tuner search under measurement noise; the found
	// configuration is then scored noise-free (the paper re-measures).
	noisy := platsim.NewObjective(sc)
	noisy.NoiseFrac = epochNoise
	var saTimes, boTimes []float64
	for _, seed := range tableSeeds {
		noisy.NoiseSeed = seed
		sa := anneal.Run(sp, noisy, budget, rand.New(rand.NewSource(seed)), anneal.Options{})
		saTimes = append(saTimes, clean.Evaluate(sa.Best))

		bo := bayesopt.NewTuner(sp, budget, seed)
		res := bo.Run(noisy)
		boTimes = append(boTimes, clean.Evaluate(res.Best))
	}
	row.SAMean, row.SAStd = meanStd(saTimes)
	row.Tuner, row.TunerStd = meanStd(boTimes)
	return row, nil
}

func meanStd(xs []float64) (mean, std float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		std += (x - mean) * (x - mean)
	}
	return mean, math.Sqrt(std / float64(len(xs)))
}

// TableVIRow is one line of Table VI.
type TableVIRow struct {
	Platform     string
	SamplerModel string
	SpaceSize    int
	Budget       int
}

// TableVI reproduces Table VI: the number of searches each algorithm
// performs — the exhaustive search covers the whole space, SA and the
// auto-tuner share a 5–6 % budget.
func TableVI(w io.Writer) ([]TableVIRow, error) {
	var rows []TableVIRow
	tb := tablefmt.New("Table VI: number of searches of different algorithms",
		"platform", "sampler-model", "exhaustive", "sim. anneal.", "auto-tuner")
	for _, plat := range []platform.Spec{platform.IceLake4S, platform.SapphireRapids2S} {
		size := search.DefaultSpace(plat.TotalCores()).Size()
		for _, sm := range samplerModels {
			setup := Setup{Plat: plat, Sampler: sm.Sampler, Model: sm.Model}
			budget := searchBudget(plat, sm.Sampler)
			rows = append(rows, TableVIRow{
				Platform: plat.Name, SamplerModel: setup.SamplerModel(),
				SpaceSize: size, Budget: budget,
			})
			pct := fmt.Sprintf("%d (%.0f%%)", budget, 100*float64(budget)/float64(size))
			tb.Add(plat.Name, setup.SamplerModel(), fmt.Sprintf("%d (100%%)", size), pct, pct)
		}
	}
	_, err := io.WriteString(w, tb.String())
	return rows, err
}
