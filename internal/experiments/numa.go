package experiments

import (
	"io"

	"argo/internal/platform"
	"argo/internal/platsim"
	"argo/internal/tablefmt"
)

// NUMARow compares UPI-bound and NUMA-aware execution at one core budget.
type NUMARow struct {
	Cores         int
	UPIBoundSec   float64
	NUMAAwareSec  float64
	Gain          float64
	FeatureCopies int
}

// NUMAExtension evaluates the paper's §IX future-work proposal on the
// simulator: replicating the feature store per socket removes the UPI
// bottleneck that flattens ARGO past 64 cores on the four-socket machine,
// at the cost of one feature copy per socket.
func NUMAExtension(w io.Writer) ([]NUMARow, error) {
	setup := Setup{Lib: platsim.DGL, Plat: platform.IceLake4S, Sampler: platsim.Neighbor, Model: platsim.SAGE, Dataset: "ogbn-products"}
	sc := setup.Scenario()
	var rows []NUMARow
	for _, cores := range []int{32, 64, 112} {
		cfg, _ := platsim.BestWithBudget(sc, cores)
		base, err := platsim.Simulate(sc, platsim.SimConfig{
			Procs: cfg.Procs, SampleCores: cfg.SampleCores, TrainCores: cfg.TrainCores, MaxIters: 40,
		})
		if err != nil {
			return rows, err
		}
		aware, err := platsim.Simulate(sc, platsim.SimConfig{
			Procs: cfg.Procs, SampleCores: cfg.SampleCores, TrainCores: cfg.TrainCores, MaxIters: 40, NUMAAware: true,
		})
		if err != nil {
			return rows, err
		}
		rows = append(rows, NUMARow{
			Cores:         cores,
			UPIBoundSec:   base.EpochSeconds,
			NUMAAwareSec:  aware.EpochSeconds,
			Gain:          base.EpochSeconds / aware.EpochSeconds,
			FeatureCopies: base.SocketsUsed,
		})
	}
	tb := tablefmt.New("§IX extension: NUMA-aware feature replication (ARGO best config per budget, NS-SAGE products, Ice Lake)",
		"cores", "UPI-bound epoch (s)", "NUMA-aware epoch (s)", "gain", "feature copies")
	for _, r := range rows {
		tb.Addf(r.Cores, r.UPIBoundSec, r.NUMAAwareSec, tablefmt.Ratio(r.Gain), r.FeatureCopies)
	}
	_, err := io.WriteString(w, tb.String())
	return rows, err
}
