package experiments

import (
	"fmt"
	"io"

	"argo/internal/platform"
	"argo/internal/platsim"
	"argo/internal/trace"
)

// Fig2Data holds the time-trace comparison: one versus two concurrent GNN
// training processes (paper Fig. 2).
type Fig2Data struct {
	Single, Dual               *trace.Timeline
	SingleMemBusy, DualMemBusy float64
}

// Fig2 reproduces Fig. 2: with a single process the memory system idles
// whenever compute phases run; with two staggered processes one process's
// memory phases overlap the other's computation, raising memory-system
// utilisation.
func Fig2(w io.Writer) (Fig2Data, error) {
	setup := Setup{Lib: platsim.DGL, Plat: platform.IceLake4S, Sampler: platsim.Neighbor, Model: platsim.SAGE, Dataset: "ogbn-products"}
	sc := setup.Scenario()
	var data Fig2Data

	data.Single = &trace.Timeline{}
	if _, err := platsim.Simulate(sc, platsim.SimConfig{
		Procs: 1, SampleCores: 2, TrainCores: 12, MaxIters: 4, Trace: data.Single,
	}); err != nil {
		return data, err
	}
	data.Dual = &trace.Timeline{}
	if _, err := platsim.Simulate(sc, platsim.SimConfig{
		Procs: 2, SampleCores: 2, TrainCores: 12, MaxIters: 4, Trace: data.Dual,
	}); err != nil {
		return data, err
	}
	data.SingleMemBusy = data.Single.BusyFraction(trace.MemoryPhases)
	data.DualMemBusy = data.Dual.BusyFraction(trace.MemoryPhases)

	fmt.Fprintln(w, "== Fig 2: time-trace of 1 vs 2 GNN training processes (Neighbor-SAGE, ogbn-products, Ice Lake) ==")
	fmt.Fprintln(w, "(A) single process:")
	io.WriteString(w, data.Single.Render(100))
	fmt.Fprintf(w, "memory-system busy fraction: %.0f%%\n\n", data.SingleMemBusy*100)
	fmt.Fprintln(w, "(B) two processes:")
	io.WriteString(w, data.Dual.Render(100))
	fmt.Fprintf(w, "memory-system busy fraction: %.0f%%\n", data.DualMemBusy*100)
	return data, nil
}
