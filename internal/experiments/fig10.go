package experiments

import (
	"fmt"
	"io"

	"argo/internal/bayesopt"
	"argo/internal/platsim"
	"argo/internal/search"
	"argo/internal/tablefmt"
)

// totalEpochs is the end-to-end training length the paper measures
// (§VI-E: 200 epochs, enough for every task to converge).
const totalEpochs = 200

// EndToEndRow is one bar pair of Fig. 10/11: total training time of the
// stock library versus ARGO (auto-tuning overhead included).
type EndToEndRow struct {
	Platform     string
	SamplerModel string
	Dataset      string

	BaselineSec float64
	ARGOSec     float64
	Speedup     float64
	BestConfig  search.Config
}

// EndToEndData holds one full figure.
type EndToEndData struct {
	Library string
	Rows    []EndToEndRow
}

// Fig10 reproduces Fig. 10: 200-epoch end-to-end training time, DGL vs
// ARGO, across 4 datasets × 2 sampler-models × 2 platforms.
func Fig10(w io.Writer) (EndToEndData, error) { return endToEnd(w, platsim.DGL, "Fig 10") }

// Fig11 reproduces Fig. 11 for PyG.
func Fig11(w io.Writer) (EndToEndData, error) { return endToEnd(w, platsim.PyG, "Fig 11") }

func endToEnd(w io.Writer, lib platsim.Profile, title string) (EndToEndData, error) {
	data := EndToEndData{Library: lib.Name}
	tb := tablefmt.New(fmt.Sprintf("%s: overall training time (s) of %s vs ARGO, %d epochs", title, lib.Name, totalEpochs),
		"dataset", "sampler-model", "platform", lib.Name, "ARGO", "speedup", "found config")
	for _, dataset := range datasets {
		for _, sm := range samplerModels {
			for _, plat := range platforms {
				setup := Setup{Lib: lib, Plat: plat, Sampler: sm.Sampler, Model: sm.Model, Dataset: dataset}
				row, err := endToEndRow(setup)
				if err != nil {
					return data, err
				}
				data.Rows = append(data.Rows, row)
				tb.Add(dataset, row.SamplerModel, plat.Name,
					tablefmt.F(row.BaselineSec), tablefmt.F(row.ARGOSec),
					tablefmt.Ratio(row.Speedup), row.BestConfig.String())
			}
		}
	}
	_, err := io.WriteString(w, tb.String())
	return data, err
}

// endToEndRow measures one bar pair. The ARGO time charges every
// search-phase epoch at the cost of the configuration it actually probed
// (including bad ones) plus the measured surrogate-fitting overhead —
// exactly the accounting the paper uses (§VI-E).
func endToEndRow(setup Setup) (EndToEndRow, error) {
	sc := setup.Scenario()
	row := EndToEndRow{
		Platform:     setup.Plat.Name,
		SamplerModel: setup.SamplerModel(),
		Dataset:      setup.Dataset,
	}
	base, err := platsim.BaselineEpoch(sc, setup.Plat.TotalCores())
	if err != nil {
		return row, err
	}
	row.BaselineSec = base * totalEpochs

	budget := searchBudget(setup.Plat, setup.Sampler)
	sp := search.DefaultSpace(setup.Plat.TotalCores())
	obj := platsim.NewObjective(sc)
	obj.NoiseFrac = epochNoise
	obj.NoiseSeed = 1
	tuner := bayesopt.NewTuner(sp, budget, 1)
	res := tuner.Run(obj)
	for _, ev := range res.History {
		row.ARGOSec += ev.Time
	}
	clean := platsim.NewObjective(sc)
	bestTime := clean.Evaluate(res.Best)
	row.BestConfig = res.Best
	row.ARGOSec += bestTime * float64(totalEpochs-budget)
	row.ARGOSec += tuner.Overhead().Seconds()
	row.Speedup = row.BaselineSec / row.ARGOSec
	return row, nil
}
