package experiments

import (
	"fmt"
	"io"

	"argo/internal/platsim"
	"argo/internal/tablefmt"
)

// Fig8Series is one line of a Fig. 8 panel: normalized speedup versus
// allocated cores for either the stock library or ARGO.
type Fig8Series struct {
	Label    string
	Cores    []int
	Speedup  []float64
	EpochSec []float64
}

// Fig8Data groups the four panels (DGL/PyG × Ice Lake/Sapphire Rapids).
type Fig8Data struct {
	Panels map[string][]Fig8Series
}

// Fig8 reproduces Fig. 8: the stock libraries peak at ~16 cores; with
// ARGO enabled both keep scaling, flattening only at the NUMA/UPI limit.
// Each series is normalized to its own 4-core time, as in the paper.
func Fig8(w io.Writer) (Fig8Data, error) {
	data := Fig8Data{Panels: map[string][]Fig8Series{}}
	fmt.Fprintln(w, "== Fig 8: library vs ARGO core scaling (ogbn-products) ==")
	for _, lib := range []platsim.Profile{platsim.DGL, platsim.PyG} {
		for _, plat := range platforms {
			cores := coreSteps(plat.TotalCores())
			panel := fmt.Sprintf("%s on %s", lib.Name, plat.Name)
			var series []Fig8Series
			for _, sm := range samplerModels {
				setup := Setup{Lib: lib, Plat: plat, Sampler: sm.Sampler, Model: sm.Model, Dataset: "ogbn-products"}
				sc := setup.Scenario()

				base := Fig8Series{Label: lib.Name + "-" + setup.SamplerModel(), Cores: cores}
				for _, c := range cores {
					e, err := platsim.BaselineEpoch(sc, c)
					if err != nil {
						return data, err
					}
					base.EpochSec = append(base.EpochSec, e)
					base.Speedup = append(base.Speedup, base.EpochSec[0]/e)
				}
				argo := Fig8Series{Label: "ARGO-" + setup.SamplerModel(), Cores: cores}
				for _, c := range cores {
					_, e := platsim.BestWithBudget(sc, c)
					argo.EpochSec = append(argo.EpochSec, e)
					argo.Speedup = append(argo.Speedup, argo.EpochSec[0]/e)
				}
				series = append(series, base, argo)
			}
			data.Panels[panel] = series

			tb := tablefmt.New("Improvement of "+panel, append([]string{"series"}, intHeaders(cores)...)...)
			for _, s := range series {
				row := []string{s.Label}
				for _, v := range s.Speedup {
					row = append(row, tablefmt.Ratio(v))
				}
				tb.Add(row...)
			}
			io.WriteString(w, tb.String())
			fmt.Fprintln(w)
		}
	}
	return data, nil
}

func coreSteps(total int) []int {
	steps := []int{4, 8, 16, 32, 64}
	if total > 64 {
		steps = append(steps, total)
	}
	return steps
}
