package experiments

import (
	"io"

	"argo/internal/platform"
	"argo/internal/platsim"
	"argo/internal/tablefmt"
)

// Fig1Data holds the baseline core-scaling study: normalized speedup of
// the stock libraries versus allocated cores (paper Fig. 1).
type Fig1Data struct {
	Cores    []int
	Speedups map[string][]float64 // library name → speedup per core count
}

// Fig1 reproduces Fig. 1: DGL and PyG training Neighbor-SAGE on
// ogbn-products, normalized to the 4-core epoch time, flattening around
// 16 cores.
func Fig1(w io.Writer) (Fig1Data, error) {
	data := Fig1Data{
		Cores:    []int{4, 8, 16, 32, 64, 112},
		Speedups: map[string][]float64{},
	}
	tb := tablefmt.New("Fig 1: normalized speedup vs CPU cores (Neighbor-SAGE, ogbn-products, Ice Lake)",
		"library", "4", "8", "16", "32", "64", "112")
	for _, lib := range []platsim.Profile{platsim.DGL, platsim.PyG} {
		setup := Setup{Lib: lib, Plat: platform.IceLake4S, Sampler: platsim.Neighbor, Model: platsim.SAGE, Dataset: "ogbn-products"}
		sc := setup.Scenario()
		var base float64
		row := []string{lib.Name}
		for _, c := range data.Cores {
			epoch, err := platsim.BaselineEpoch(sc, c)
			if err != nil {
				return data, err
			}
			if base == 0 {
				base = epoch
			}
			s := base / epoch
			data.Speedups[lib.Name] = append(data.Speedups[lib.Name], s)
			row = append(row, tablefmt.Ratio(s))
		}
		tb.Add(row...)
	}
	_, err := io.WriteString(w, tb.String())
	return data, err
}
