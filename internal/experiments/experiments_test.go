package experiments

import (
	"io"
	"math"
	"strings"
	"testing"

	"argo/internal/platform"
	"argo/internal/platsim"
)

func TestRegistryNamesAndUnknown(t *testing.T) {
	names := Names()
	if len(names) != len(Registry) {
		t.Fatalf("Names() returned %d of %d", len(names), len(Registry))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatal("Names() must be sorted")
		}
	}
	if err := Run("nope", io.Discard); err == nil {
		t.Fatal("unknown experiment must error")
	}
}

func TestSetupScenarioAndLabels(t *testing.T) {
	s := Setup{Lib: platsim.DGL, Plat: platform.IceLake4S, Sampler: platsim.Shadow, Model: platsim.GCN, Dataset: "reddit"}
	if s.SamplerModel() != "ShaDow-GCN" {
		t.Fatalf("SamplerModel = %q", s.SamplerModel())
	}
	sc := s.Scenario()
	if sc.Dataset.Name != "reddit" {
		t.Fatal("scenario dataset wrong")
	}
}

func TestSearchBudgetsMatchTableVI(t *testing.T) {
	cases := []struct {
		plat    platform.Spec
		sampler platsim.SamplerKind
		want    int
	}{
		{platform.IceLake4S, platsim.Neighbor, 35},
		{platform.IceLake4S, platsim.Shadow, 45},
		{platform.SapphireRapids2S, platsim.Neighbor, 20},
		{platform.SapphireRapids2S, platsim.Shadow, 25},
	}
	for _, c := range cases {
		if got := searchBudget(c.plat, c.sampler); got != c.want {
			t.Fatalf("budget(%s, %s) = %d, want %d", c.plat.Name, c.sampler, got, c.want)
		}
	}
}

// Fig 1 shape: both libraries speed up from 4 to 16 cores and flatten
// afterwards.
func TestFig1Shape(t *testing.T) {
	data, err := Fig1(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	for lib, s := range data.Speedups {
		if len(s) != len(data.Cores) {
			t.Fatalf("%s: %d points for %d cores", lib, len(s), len(data.Cores))
		}
		if s[0] != 1 {
			t.Fatalf("%s: speedups must be normalized to 4 cores", lib)
		}
		// 16 cores (index 2) clearly above 4 cores.
		if s[2] < 1.4 {
			t.Fatalf("%s: 16-core speedup %.2f too low", lib, s[2])
		}
		// Flattening: full machine adds less than 45%% over 16 cores.
		if s[5]/s[2] > 1.45 {
			t.Fatalf("%s: keeps scaling past 16 cores (%.2f→%.2f)", lib, s[2], s[5])
		}
	}
}

// Fig 2 shape: two processes keep the memory system busier.
func TestFig2Shape(t *testing.T) {
	var buf strings.Builder
	data, err := Fig2(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if data.DualMemBusy <= data.SingleMemBusy {
		t.Fatalf("dual busy %.2f not above single %.2f", data.DualMemBusy, data.SingleMemBusy)
	}
	out := buf.String()
	for _, want := range []string{"single process", "two processes", "P0 trainer", "P1 trainer"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig2 output missing %q", want)
		}
	}
}

// Fig 6 shape: workload grows with processes (both simulated and real),
// bandwidth grows then saturates.
func TestFig6Shape(t *testing.T) {
	data, err := Fig6(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(data.Procs); i++ {
		if data.SimEdges[i] <= data.SimEdges[i-1] {
			t.Fatalf("simulated workload not increasing at n=%d", data.Procs[i])
		}
		if data.RealEdges[i] <= data.RealEdges[i-1] {
			t.Fatalf("real sampled workload not increasing at n=%d", data.Procs[i])
		}
	}
	last := len(data.Procs) - 1
	if data.SimBWGBs[1] <= data.SimBWGBs[0] {
		t.Fatal("bandwidth must grow 1→2 processes")
	}
	growthEarly := data.SimBWGBs[1] / data.SimBWGBs[0]
	growthLate := data.SimBWGBs[last] / data.SimBWGBs[last-1]
	if growthLate > growthEarly {
		t.Fatal("bandwidth growth must taper (saturation)")
	}
}

// Fig 7 shape: optima differ across setups (the paper's argument for
// per-setup tuning), and every panel's optimum is feasible.
func TestFig7Shape(t *testing.T) {
	panels, err := Fig7(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(panels) != 6 {
		t.Fatalf("Fig 7 has %d panels, want 6", len(panels))
	}
	optima := map[string]bool{}
	for _, p := range panels {
		if math.IsInf(p.BestSec, 1) {
			t.Fatal("panel without feasible optimum")
		}
		optima[p.Best.String()] = true
	}
	if len(optima) < 2 {
		t.Fatal("optimal configuration should vary across setups")
	}
}

func TestFig12Shape(t *testing.T) {
	hd, err := Fig12(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(hd.Seconds) != 8 || len(hd.Seconds[0]) != 10 {
		t.Fatalf("surface is %dx%d, want 8x10", len(hd.Seconds), len(hd.Seconds[0]))
	}
}

// Fig 8 shape: ARGO outruns the stock library at full machine scale on
// every panel, and the stock library flattens.
func TestFig8Shape(t *testing.T) {
	data, err := Fig8(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(data.Panels) != 4 {
		t.Fatalf("Fig 8 has %d panels, want 4", len(data.Panels))
	}
	for panel, series := range data.Panels {
		if len(series) != 4 { // 2 sampler-models × (library, ARGO)
			t.Fatalf("%s: %d series", panel, len(series))
		}
		for i := 0; i < len(series); i += 2 {
			lib, argo := series[i], series[i+1]
			last := len(lib.EpochSec) - 1
			if argo.EpochSec[last] >= lib.EpochSec[last] {
				t.Fatalf("%s/%s: ARGO %.2fs not faster than library %.2fs at full scale",
					panel, lib.Label, argo.EpochSec[last], lib.EpochSec[last])
			}
			if argo.Speedup[last] <= lib.Speedup[last] {
				t.Fatalf("%s/%s: ARGO normalized speedup must exceed the library's", panel, lib.Label)
			}
		}
	}
}

// Table VI shape: budgets are 5–6%% of the space.
func TestTableVIShape(t *testing.T) {
	rows, err := TableVI(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("Table VI has %d rows, want 4", len(rows))
	}
	for _, r := range rows {
		frac := float64(r.Budget) / float64(r.SpaceSize)
		if frac < 0.025 || frac > 0.08 {
			t.Fatalf("%s/%s: budget fraction %.3f outside 2.5–8%%", r.Platform, r.SamplerModel, frac)
		}
	}
}

// One Table IV row end-to-end (the full table runs in cmd/argo-bench and
// the benchmarks): the auto-tuner must land within 90%% of exhaustive and
// the default must be sub-optimal.
func TestSearchRowShape(t *testing.T) {
	setup := Setup{Lib: platsim.DGL, Plat: platform.SapphireRapids2S, Sampler: platsim.Shadow, Model: platsim.GCN, Dataset: "ogbn-products"}
	row, err := searchRow(setup)
	if err != nil {
		t.Fatal(err)
	}
	if row.Exhaustive <= 0 {
		t.Fatal("exhaustive time must be positive")
	}
	if q := row.Exhaustive / row.Tuner; q < 0.9 {
		t.Fatalf("auto-tuner quality %.3f below 0.9", q)
	}
	if row.Default <= row.Exhaustive {
		t.Fatal("default must be slower than the exhaustive optimum")
	}
	if row.SAMean < row.Exhaustive {
		t.Fatal("SA cannot beat the exhaustive optimum on the clean objective")
	}
	if row.Budget != 25 {
		t.Fatalf("budget = %d, want 25", row.Budget)
	}
}

// One Fig 10 row: ARGO end-to-end must beat the default for the large
// ShaDow workloads (the paper's headline case).
func TestEndToEndRowShape(t *testing.T) {
	setup := Setup{Lib: platsim.DGL, Plat: platform.SapphireRapids2S, Sampler: platsim.Shadow, Model: platsim.GCN, Dataset: "ogbn-products"}
	row, err := endToEndRow(setup)
	if err != nil {
		t.Fatal(err)
	}
	if row.Speedup < 1.5 {
		t.Fatalf("ShaDow-GCN products end-to-end speedup %.2f too low", row.Speedup)
	}
	if row.ARGOSec <= 0 || row.BaselineSec <= 0 {
		t.Fatal("times must be positive")
	}
}

func TestTunerOverheadExperiment(t *testing.T) {
	rows, err := TunerOverhead(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d overhead rows, want 4", len(rows))
	}
	for _, r := range rows {
		if r.Overhead <= 0 {
			t.Fatalf("%s: zero tuner overhead", r.Platform)
		}
		if r.Overhead.Seconds() > 30 {
			t.Fatalf("%s: tuner overhead %.1fs implausibly large", r.Platform, r.Overhead.Seconds())
		}
	}
}

func TestPartitionAblation(t *testing.T) {
	rows, err := PartitionAblation(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d partition rows", len(rows))
	}
	random, greedy := rows[0], rows[1]
	if greedy.EdgeCut >= random.EdgeCut {
		t.Fatal("greedy partitioner must reduce the edge cut")
	}
	if greedy.BuildTime <= random.BuildTime {
		t.Fatal("greedy partitioner must cost more time (the §VII-A trade-off)")
	}
}

// Fig 9 (trimmed): multi-process convergence curves track the
// single-process baseline.
func TestFig9CurvesOverlap(t *testing.T) {
	if testing.Short() {
		t.Skip("real training loop")
	}
	data, err := fig9(io.Discard, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(data.Curves) != 4 {
		t.Fatalf("%d curves, want 4", len(data.Curves))
	}
	base := data.Curves[0]
	final := base.Accuracy[len(base.Accuracy)-1]
	if final < 0.3 {
		t.Fatalf("baseline accuracy %.3f too low to compare curves", final)
	}
	for _, c := range data.Curves[1:] {
		accN := c.Accuracy[len(c.Accuracy)-1]
		if gap := math.Abs(accN - final); gap > 0.15 {
			t.Fatalf("%s final accuracy %.3f deviates from baseline %.3f", c.Label, accN, final)
		}
	}
}

// §IX extension: NUMA-aware replication must help multi-socket layouts.
func TestNUMAExtensionShape(t *testing.T) {
	rows, err := NUMAExtension(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows, want 3", len(rows))
	}
	for _, r := range rows {
		if r.Gain <= 1.0 {
			t.Fatalf("%d cores: NUMA-aware gain %.3f not above 1", r.Cores, r.Gain)
		}
		if r.FeatureCopies < 2 {
			t.Fatalf("%d cores: expected multi-socket layout", r.Cores)
		}
	}
}
