// Package experiments regenerates every table and figure from the paper's
// evaluation section (the per-experiment index lives in DESIGN.md §6).
// Each experiment writes a human-readable rendition to an io.Writer and
// returns its structured data so tests can assert the expected shapes.
package experiments

import (
	"fmt"
	"io"
	"sort"

	"argo/internal/graph"
	"argo/internal/platform"
	"argo/internal/platsim"
)

// Setup names one (library, platform, sampler-model, dataset) cell of the
// paper's evaluation grid.
type Setup struct {
	Lib     platsim.Profile
	Plat    platform.Spec
	Sampler platsim.SamplerKind
	Model   platsim.ModelKind
	Dataset string
	// Spec, when non-nil, supplies the dataset specification directly —
	// for workloads resolved outside the graph registry (a *-sim profile
	// or a loaded .argograph store). Dataset stays the display name.
	Spec *graph.DatasetSpec
}

// Scenario materialises the setup's simulator scenario.
func (s Setup) Scenario() platsim.Scenario {
	ds := graph.DatasetSpec{}
	if s.Spec != nil {
		ds = *s.Spec
	} else {
		var err error
		ds, err = graph.Spec(s.Dataset)
		if err != nil {
			panic(err) // setups are compile-time constants; a bad name is a bug
		}
	}
	return platsim.Scenario{
		Platform: s.Plat,
		Library:  s.Lib,
		Sampler:  s.Sampler,
		Model:    s.Model,
		Dataset:  ds,
	}
}

// SamplerModel renders "Neighbor-SAGE" / "ShaDow-GCN" like the paper.
func (s Setup) SamplerModel() string {
	name := map[platsim.SamplerKind]string{platsim.Neighbor: "Neighbor", platsim.Shadow: "ShaDow"}[s.Sampler]
	model := map[platsim.ModelKind]string{platsim.SAGE: "SAGE", platsim.GCN: "GCN"}[s.Model]
	return name + "-" + model
}

// The paper evaluates exactly these two sampler-model pairs (§VI-A2).
var samplerModels = []struct {
	Sampler platsim.SamplerKind
	Model   platsim.ModelKind
}{
	{platsim.Neighbor, platsim.SAGE},
	{platsim.Shadow, platsim.GCN},
}

var platforms = []platform.Spec{platform.IceLake4S, platform.SapphireRapids2S}

var datasets = []string{"flickr", "reddit", "ogbn-products", "ogbn-papers100M"}

// searchBudget mirrors Table VI: the number of online-learning epochs per
// platform and sampler-model pair (5–6 % of the space).
func searchBudget(plat platform.Spec, sampler platsim.SamplerKind) int {
	switch {
	case plat.TotalCores() >= 112 && sampler == platsim.Neighbor:
		return 35
	case plat.TotalCores() >= 112:
		return 45
	case sampler == platsim.Neighbor:
		return 20
	default:
		return 25
	}
}

// Runner is the registry entry type used by cmd/argo-bench.
type Runner func(w io.Writer) error

// Registry maps experiment names to their regenerators.
var Registry = map[string]Runner{
	"fig1":      func(w io.Writer) error { _, err := Fig1(w); return err },
	"fig2":      func(w io.Writer) error { _, err := Fig2(w); return err },
	"fig6":      func(w io.Writer) error { _, err := Fig6(w); return err },
	"fig7":      func(w io.Writer) error { _, err := Fig7(w); return err },
	"fig8":      func(w io.Writer) error { _, err := Fig8(w); return err },
	"fig9":      func(w io.Writer) error { _, err := Fig9(w); return err },
	"fig10":     func(w io.Writer) error { _, err := Fig10(w); return err },
	"fig11":     func(w io.Writer) error { _, err := Fig11(w); return err },
	"fig12":     func(w io.Writer) error { _, err := Fig12(w); return err },
	"table4":    func(w io.Writer) error { _, err := TableIV(w); return err },
	"table5":    func(w io.Writer) error { _, err := TableV(w); return err },
	"table6":    func(w io.Writer) error { _, err := TableVI(w); return err },
	"numa":      func(w io.Writer) error { _, err := NUMAExtension(w); return err },
	"overhead":  func(w io.Writer) error { _, err := TunerOverhead(w); return err },
	"partition": func(w io.Writer) error { _, err := PartitionAblation(w); return err },
}

// Names returns the registry keys in sorted order.
func Names() []string {
	var names []string
	for n := range Registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Run executes one experiment by name.
func Run(name string, w io.Writer) error {
	r, ok := Registry[name]
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
	}
	return r(w)
}
