package rlsim

import (
	"math"
	"testing"

	"argo/internal/bayesopt"
	"argo/internal/search"
)

func TestObjectiveFeasibility(t *testing.T) {
	o := NewObjective()
	// 8 groups × 10 cores + 10 units = 90 CPU > 64.
	if v := o.Evaluate(search.Config{Procs: 8, SampleCores: 10, TrainCores: 10}); !math.IsInf(v, 1) {
		t.Fatalf("over-budget allocation must be infeasible, got %v", v)
	}
	if v := o.Evaluate(search.Config{Procs: 2, SampleCores: 4, TrainCores: 5}); v <= 0 || math.IsInf(v, 1) {
		t.Fatalf("feasible allocation must have finite positive time, got %v", v)
	}
}

// The optimum must be interior: pure-actor and pure-learner corners lose.
func TestOptimumIsInterior(t *testing.T) {
	o := NewObjective()
	sp := Space(o.Platform)
	best := search.Exhaustive(sp, o)
	corners := []search.Config{
		{Procs: 8, SampleCores: 6, TrainCores: 1},  // actor-heavy
		{Procs: 1, SampleCores: 1, TrainCores: 10}, // learner-heavy
	}
	for _, c := range corners {
		if v := o.Evaluate(c); v <= best.BestTime {
			t.Fatalf("corner %v (%.2fs) should lose to optimum %v (%.2fs)", c, v, best.Best, best.BestTime)
		}
	}
	if best.Best.TrainCores < 2 || best.Best.Procs < 2 {
		t.Fatalf("optimum %v sits on a corner — workload miscalibrated", best.Best)
	}
}

// More production capacity must never hurt throughput-side monotonicity:
// with the learner fixed, going from 1 to 2 actor groups at the same
// per-group cores improves (or ties) the time until the learner binds.
func TestProductionMonotoneUntilLearnerBound(t *testing.T) {
	o := NewObjective()
	t1 := o.Evaluate(search.Config{Procs: 1, SampleCores: 2, TrainCores: 6})
	t2 := o.Evaluate(search.Config{Procs: 2, SampleCores: 2, TrainCores: 6})
	if t2 >= t1 {
		t.Fatalf("doubling starved production should help: %v → %v", t1, t2)
	}
}

// The §VII-C claim end-to-end: ARGO's tuner solves the RL allocation
// problem with a ~5% budget, no modification.
func TestTunerSolvesRLAllocation(t *testing.T) {
	o := NewObjective()
	sp := Space(o.Platform)
	opt := search.Exhaustive(sp, o).BestTime
	budget := sp.Size() / 20 // 5%
	worst := 1.0
	for seed := int64(0); seed < 5; seed++ {
		res := bayesopt.NewTuner(sp, budget, seed).Run(o)
		if q := opt / res.BestTime; q < worst {
			worst = q
		}
	}
	if worst < 0.85 {
		t.Fatalf("worst-seed tuner quality %.3f below 0.85 on the RL objective", worst)
	}
}

func TestSpaceRespectsGPUBudget(t *testing.T) {
	o := NewObjective()
	// 10 units × 8 SMs = 80 = TotalSMs: feasible; hypothetical 11 would
	// not be, but the space caps TrainCores at 10 so every enumerated
	// config must be SM-feasible.
	for _, c := range Space(o.Platform).Enumerate() {
		if c.TrainCores*o.Platform.SMsPerUnit > o.Platform.TotalSMs {
			t.Fatalf("config %v exceeds the GPU budget", c)
		}
	}
}
