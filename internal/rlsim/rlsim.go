// Package rlsim demonstrates the paper's §VII-C generalizability claim:
// ARGO's black-box auto-tuner is not GNN-specific. It models parallel
// reinforcement-learning training on a CPU–GPU platform — Actors generate
// experience on CPU cores, a Learner consumes batches on GPU streaming
// multiprocessors — and exposes the allocation problem through the same
// search.Objective interface the GNN tuner optimises.
//
// The mapping onto ARGO's configuration triple follows the paper's own
// analogy (actors ↔ sampling, learner ↔ training):
//
//	Config.Procs       → number of parallel actor groups
//	Config.SampleCores → CPU cores per actor group
//	Config.TrainCores  → learner share units (1 unit = 8 GPU SMs + 1 CPU core)
package rlsim

import (
	"math"

	"argo/internal/search"
)

// Platform describes the heterogeneous machine (e.g. one CPU socket plus
// a data-center GPU).
type Platform struct {
	Name       string
	CPUCores   int // joint CPU budget: actors plus learner host cores
	TotalSMs   int // GPU streaming multiprocessors
	SMsPerUnit int // SMs granted per Config.TrainCores unit
}

// DefaultPlatform is a 64-core host with an 80-SM GPU.
var DefaultPlatform = Platform{Name: "cpu64-gpu80", CPUCores: 64, TotalSMs: 80, SMsPerUnit: 8}

// Space returns the feasible allocation space on p, reusing ARGO's
// configuration bounds: n·(s+t) ≤ CPUCores models the joint host budget
// (each learner unit also pins one host core for the feeding thread).
func Space(p Platform) search.Space {
	return search.DefaultSpace(p.CPUCores)
}

// Workload characterises one RL training job.
type Workload struct {
	// EnvStepsPerCoreSec is one actor core's environment simulation rate.
	EnvStepsPerCoreSec float64
	// ActorSerialFrac is the Amdahl serial fraction inside an actor group
	// (environment reset, policy inference batching).
	ActorSerialFrac float64
	// BatchSteps is the number of environment steps per learner batch.
	BatchSteps float64
	// LearnerStepsPerSMSec is the learner's gradient-step rate per SM.
	LearnerStepsPerSMSec float64
	// LearnerSatSMs is where additional SMs stop helping.
	LearnerSatSMs float64
	// BroadcastSec is the per-iteration policy-broadcast cost per actor
	// group.
	BroadcastSec float64
	// TargetSteps is the number of environment steps the objective
	// measures over (the "epoch" equivalent).
	TargetSteps float64
}

// DefaultWorkload is an A2C-style job sized so the optimal allocation is
// interior: neither all-actors nor all-learner wins.
var DefaultWorkload = Workload{
	EnvStepsPerCoreSec:   3_000,
	ActorSerialFrac:      0.15,
	BatchSteps:           2_048,
	LearnerStepsPerSMSec: 1.1,
	LearnerSatSMs:        48,
	BroadcastSec:         0.004,
	TargetSteps:          1e6,
}

// Objective maps an ARGO configuration to the wall time of TargetSteps
// environment steps. It implements search.Objective.
type Objective struct {
	Platform Platform
	Workload Workload
}

// NewObjective returns the default §VII-C objective.
func NewObjective() *Objective {
	return &Objective{Platform: DefaultPlatform, Workload: DefaultWorkload}
}

// Evaluate implements search.Objective.
func (o *Objective) Evaluate(c search.Config) float64 {
	p, w := o.Platform, o.Workload
	actorGroups := c.Procs
	actorCores := c.SampleCores
	smUnits := c.TrainCores

	totalCPU := actorGroups*actorCores + smUnits
	sms := smUnits * p.SMsPerUnit
	if totalCPU > p.CPUCores || sms > p.TotalSMs {
		return math.Inf(1)
	}

	// Experience production: per-group Amdahl over its cores, aggregated
	// across groups, with a broadcast coordination tax per group.
	perGroup := w.EnvStepsPerCoreSec * float64(actorCores) /
		(1 + w.ActorSerialFrac*float64(actorCores-1))
	production := perGroup * float64(actorGroups)

	// Learner consumption: saturating in SMs.
	smEff := w.LearnerSatSMs * (1 - math.Exp(-float64(sms)/w.LearnerSatSMs))
	consumption := w.LearnerStepsPerSMSec * smEff * w.BatchSteps

	// Steady-state throughput is the slower side; an imbalance tax keeps
	// the landscape smooth (queue contention near the crossover).
	throughput := math.Min(production, consumption)
	imbalance := math.Abs(production-consumption) / math.Max(production, consumption)
	throughput *= 1 - 0.1*imbalance

	iterations := w.TargetSteps / w.BatchSteps
	syncCost := iterations * w.BroadcastSec * float64(actorGroups)
	return w.TargetSteps/throughput + syncCost
}
