package core

import (
	"context"
	"testing"

	"argo/internal/ddp"
	"argo/internal/engine"
	"argo/internal/graph"
	"argo/internal/nn"
	"argo/internal/sampler"
	"argo/internal/search"
)

// newLocalRegimeTrainer builds a sharded trainer under the partition-
// local sampling regime.
func newLocalRegimeTrainer(t *testing.T, ds *graph.Dataset, transport string) *Trainer {
	t.Helper()
	ss, err := graph.ShardSetFromDataset(ds, graph.ShardOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ss.Close() })
	skel, err := ss.Skeleton()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewTrainer(TrainerOptions{
		Dataset: skel, Sampler: sampler.NewNeighbor(skel.Graph, []int{4, 3}),
		Model:     nn.ModelSpec{Kind: nn.KindSAGE, Dims: []int{8, 6, 3}, Seed: 5},
		BatchSize: 24, LR: 0.01, Seed: 3, Shards: ss, Transport: transport,
		SamplingRegime: engine.RegimeLocal, LocalFanouts: []int{4, 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	return tr
}

// TestSnapshotHaloStatsAcrossRelaunches: per-interval snapshots sum to
// the whole-run total even when a process-count change retires the
// exchange mid-run, and the cumulative HaloStats view keeps
// accumulating untouched — the regression gate for the snapshot seam.
func TestSnapshotHaloStatsAcrossRelaunches(t *testing.T) {
	ds := shardedCoreDataset(t)
	tr := newShardedTrainer(t, ds, "")
	ctx := context.Background()

	var snapSum ddp.HaloStats
	var prevTotal ddp.HaloStats
	for _, cfg := range []search.Config{
		{Procs: 1, SampleCores: 1, TrainCores: 1},
		{Procs: 2, SampleCores: 1, TrainCores: 1}, // re-launch: exchange retired + rebuilt
		{Procs: 1, SampleCores: 1, TrainCores: 2}, // and again
	} {
		if _, err := tr.Step(ctx, cfg, 2); err != nil {
			t.Fatal(err)
		}
		delta := tr.SnapshotHaloStats()
		if delta.LocalRows == 0 {
			t.Fatalf("phase %+v: empty snapshot delta", cfg)
		}
		snapSum.Add(delta)
		total := tr.HaloStats()
		if total.LocalRows < prevTotal.LocalRows || total.RemoteRows < prevTotal.RemoteRows {
			t.Fatalf("cumulative totals went backwards: %+v then %+v", prevTotal, total)
		}
		prevTotal = total
		if snapSum != total {
			t.Fatalf("snapshot deltas sum to %+v, cumulative total is %+v", snapSum, total)
		}
	}
	// An idle interval snapshots as zero without disturbing the total.
	if idle := tr.SnapshotHaloStats(); idle != (ddp.HaloStats{}) {
		t.Fatalf("idle snapshot non-zero: %+v", idle)
	}
	if tr.HaloStats() != prevTotal {
		t.Fatal("idle snapshot disturbed the cumulative total")
	}
}

// TestLocalRegimeTrainerAcrossRelaunches: the partition samplers and
// owned-target sets are rebuilt with the exchange on every process-
// count change, training converges, and the run is reproducible
// bit-for-bit across transports.
func TestLocalRegimeTrainerAcrossRelaunches(t *testing.T) {
	ds := shardedCoreDataset(t)
	run := func(transport string) ([]float64, ddp.HaloStats) {
		tr := newLocalRegimeTrainer(t, ds, transport)
		ctx := context.Background()
		for _, cfg := range []search.Config{
			{Procs: 1, SampleCores: 1, TrainCores: 1},
			{Procs: 2, SampleCores: 1, TrainCores: 1},
			{Procs: 1, SampleCores: 1, TrainCores: 2},
		} {
			if _, err := tr.Step(ctx, cfg, 2); err != nil {
				t.Fatal(err)
			}
		}
		return tr.LossHistory(), tr.HaloStats()
	}
	inLoss, inStats := run("")
	tcpLoss, tcpStats := run("tcp")
	if len(inLoss) != 6 {
		t.Fatalf("expected 6 epochs, got %d", len(inLoss))
	}
	for i := range inLoss {
		if inLoss[i] != tcpLoss[i] {
			t.Fatalf("epoch %d: local-regime loss diverged across transports: %v vs %v", i, inLoss[i], tcpLoss[i])
		}
	}
	if inStats.GradRows == 0 {
		t.Fatal("local-regime trainer routed no halo gradients in the n=2 phase")
	}
	if inStats.GradRows != tcpStats.GradRows || inStats.RemoteRows != tcpStats.RemoteRows {
		t.Fatalf("logical traffic diverged across transports: %+v vs %+v", inStats, tcpStats)
	}
}

// TestLocalRegimeOptionValidation: the regime refuses to start without
// its inputs.
func TestLocalRegimeOptionValidation(t *testing.T) {
	ds := shardedCoreDataset(t)
	base := TrainerOptions{
		Dataset: ds, Sampler: sampler.NewNeighbor(ds.Graph, []int{4, 3}),
		Model:     nn.ModelSpec{Kind: nn.KindSAGE, Dims: []int{8, 6, 3}, Seed: 5},
		BatchSize: 24, LR: 0.01, Seed: 3,
	}
	opts := base
	opts.SamplingRegime = engine.RegimeLocal
	if _, err := NewTrainer(opts); err == nil {
		t.Fatal("local regime without a shard set accepted")
	}
	ss, err := graph.ShardSetFromDataset(ds, graph.ShardOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	opts.Shards = ss
	if _, err := NewTrainer(opts); err == nil {
		t.Fatal("local regime without fanouts accepted")
	}
	opts.LocalFanouts = []int{4, 3}
	if _, err := NewTrainer(opts); err != nil {
		t.Fatal(err)
	}
}
