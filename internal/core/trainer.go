// Package core wires ARGO's runtime components together: the
// Multi-Process Engine (n synchronized training replicas over the engine
// package) and the Core-Binder (virtual-core accounting through
// platform.Allocator). The public package argo at the module root wraps
// this with the paper's user-facing API.
package core

import (
	"context"
	"fmt"
	"time"

	"argo/internal/ddp"
	"argo/internal/engine"
	"argo/internal/graph"
	"argo/internal/nn"
	"argo/internal/platform"
	"argo/internal/sampler"
	"argo/internal/search"
	"argo/internal/tensor"
)

// TrainerOptions configures a real (not simulated) GNN training job that
// ARGO manages.
type TrainerOptions struct {
	Dataset   *graph.Dataset
	Sampler   sampler.Sampler
	Model     nn.ModelSpec
	BatchSize int
	LR        float64
	Seed      int64
	// Binder supplies the virtual cores processes are bound to. Defaults
	// to an allocator over a machine with as many cores as the largest
	// configuration can use.
	Binder *platform.Allocator
	// Shards switches on the shard-aware training path: Dataset must
	// then be the set's Skeleton() (topology + splits, no features), the
	// sampler must be built over the skeleton's graph, and every replica
	// maps only its own shards, exchanging halo features through a
	// ddp.HaloExchange that is rebuilt whenever the auto-tuner changes
	// the process count (shard→replica ownership is shard index mod n).
	Shards *graph.ShardSet
	// Transport names the ddp transport carrying the exchange of a
	// sharded run: "" or "inproc" (direct calls), or "tcp" (loopback
	// sockets, the cross-address-space seam).
	Transport string
	// NoOverlap disables the exchange/sampling overlap (performance
	// knob only; losses are bit-identical either way).
	NoOverlap bool
	// SamplingRegime selects exact (default) or partition-local
	// sampling for sharded runs. The local regime needs Shards and
	// LocalFanouts; the per-replica partition samplers and owned
	// target sets are rebuilt alongside the exchange whenever the
	// auto-tuner changes the process count.
	SamplingRegime engine.SamplingRegime
	// LocalFanouts configures the partition samplers' layered fanouts
	// (local regime only; typically the exact sampler's fanouts so the
	// regimes compare like for like).
	LocalFanouts []int
}

// Trainer runs mini-batch GNN training under changing ARGO
// configurations, preserving model state across re-launches: when the
// auto-tuner picks a different process count, the current weights are
// exported from the old Multi-Process Engine and imported into the new
// one (the re-launch described in paper §VI-F).
type Trainer struct {
	opts TrainerOptions

	cfg     search.Config
	eng     *engine.Engine
	cores   []platform.CoreID
	weights []*tensor.Matrix
	epoch   int
	losses  []float64

	// exchange is the current halo exchange (sharded runs only);
	// haloTotal and peerTotal accumulate traffic from exchanges retired
	// by re-launches — keyed by directed (from, to) replica pair, so a
	// process-count change merges rather than resets the matrix — and
	// HaloStats/ExchangeStats cover the whole run.
	exchange  *ddp.HaloExchange
	haloTotal ddp.HaloStats
	peerTotal map[[2]int]ddp.PeerCounts
	lastSnap  ddp.HaloStats // whole-run total at the previous SnapshotHaloStats
}

// NewTrainer validates opts and returns an idle trainer.
func NewTrainer(opts TrainerOptions) (*Trainer, error) {
	if opts.Dataset == nil || opts.Sampler == nil {
		return nil, fmt.Errorf("core: dataset and sampler are required")
	}
	if opts.BatchSize < 1 {
		return nil, fmt.Errorf("core: batch size %d", opts.BatchSize)
	}
	if opts.SamplingRegime == engine.RegimeLocal {
		if opts.Shards == nil {
			return nil, fmt.Errorf("core: the local sampling regime needs a shard set")
		}
		if len(opts.LocalFanouts) == 0 {
			return nil, fmt.Errorf("core: the local sampling regime needs LocalFanouts")
		}
	}
	if opts.Binder == nil {
		spec := platform.Spec{Name: "virtual", Sockets: 1, CoresPerSocket: 8 * 20}
		opts.Binder = platform.NewAllocator(spec)
	}
	return &Trainer{opts: opts}, nil
}

// Epoch returns how many epochs have been trained so far.
func (tr *Trainer) Epoch() int { return tr.epoch }

// Config returns the currently bound configuration.
func (tr *Trainer) Config() search.Config { return tr.cfg }

// Step trains `epochs` epochs under cfg and returns the mean wall-clock
// epoch time in seconds. It satisfies the argo.TrainStep contract:
// cancellation is honoured between epochs, returning ctx's error without
// losing the model state accumulated so far.
func (tr *Trainer) Step(ctx context.Context, cfg search.Config, epochs int) (float64, error) {
	if epochs < 1 {
		return 0, nil
	}
	if err := tr.bind(cfg); err != nil {
		return 0, err
	}
	var total time.Duration
	for i := 0; i < epochs; i++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		res, err := tr.eng.RunEpoch(tr.epoch)
		if err != nil {
			return 0, err
		}
		tr.epoch++
		tr.losses = append(tr.losses, res.MeanLoss)
		total += res.Duration
	}
	return total.Seconds() / float64(epochs), nil
}

// LossHistory returns the mean training loss of every epoch trained so
// far, in order — the convergence trace the shard-parity check
// compares between sharded and single-store runs.
func (tr *Trainer) LossHistory() []float64 {
	out := make([]float64, len(tr.losses))
	copy(out, tr.losses)
	return out
}

// HaloStats returns the accumulated halo-exchange traffic of a sharded
// run (zero for single-store runs), summed across auto-tuner
// re-launches.
func (tr *Trainer) HaloStats() ddp.HaloStats {
	total := tr.haloTotal
	if tr.exchange != nil {
		total.Add(tr.exchange.TotalStats())
	}
	return total
}

// SnapshotHaloStats returns the halo traffic accumulated since the
// previous SnapshotHaloStats call (or since construction) and advances
// the snapshot mark. It is built on the whole-run totals, so interval
// curves (e.g. per-epoch traffic for the regime study) stay correct
// across auto-tuner re-launches that retire and rebuild the exchange;
// HaloStats keeps reporting the untouched cumulative view.
func (tr *Trainer) SnapshotHaloStats() ddp.HaloStats {
	total := tr.HaloStats()
	delta := total
	delta.Sub(tr.lastSnap)
	tr.lastSnap = total
	return delta
}

// mergePeerTraffic folds an exchange's directed traffic edges into a
// (from, to)-keyed accumulator.
func mergePeerTraffic(dst map[[2]int]ddp.PeerCounts, ex *ddp.HaloExchange) {
	for _, pt := range ex.PeerTraffic() {
		key := [2]int{pt.From, pt.To}
		c := dst[key]
		c.Add(pt.PeerCounts)
		dst[key] = c
	}
}

// foldExchange folds the current exchange's counters into the running
// totals (called before the exchange is retired or the trainer closed).
func (tr *Trainer) foldExchange() {
	if tr.exchange == nil {
		return
	}
	tr.haloTotal.Add(tr.exchange.TotalStats())
	if tr.peerTotal == nil {
		tr.peerTotal = make(map[[2]int]ddp.PeerCounts)
	}
	mergePeerTraffic(tr.peerTotal, tr.exchange)
}

// ExchangeStats returns the whole-run exchange traffic summary of a
// sharded run — totals plus the directed per-peer matrix in
// deterministic (From, To) order, accumulated across auto-tuner
// re-launches — or nil for single-store runs.
func (tr *Trainer) ExchangeStats() *ddp.ExchangeStats {
	if tr.opts.Shards == nil {
		return nil
	}
	total := tr.haloTotal
	merged := make(map[[2]int]ddp.PeerCounts, len(tr.peerTotal))
	for k, c := range tr.peerTotal {
		merged[k] = c
	}
	transport := tr.opts.Transport
	if transport == "" {
		transport = "inproc"
	}
	if tr.exchange != nil {
		total.Add(tr.exchange.TotalStats())
		mergePeerTraffic(merged, tr.exchange)
		transport = tr.exchange.TransportName()
	}
	out := &ddp.ExchangeStats{
		Transport:   transport,
		LocalRows:   total.LocalRows,
		RemoteRows:  total.RemoteRows,
		RemoteBytes: total.RemoteBytes,
		WireBytes:   total.WireBytes,
		Messages:    total.Messages,
		GradRows:    total.GradRows,
	}
	for key, c := range merged {
		out.Peers = append(out.Peers, ddp.PeerTraffic{From: key[0], To: key[1], PeerCounts: c})
	}
	ddp.SortPeerTraffic(out.Peers)
	return out
}

// Evaluate reports validation accuracy under the current weights. Data-
// source failures (possible on the sharded path) surface as errors, not
// as a silent zero accuracy.
func (tr *Trainer) Evaluate() (float64, error) {
	if tr.eng == nil {
		if err := tr.bind(search.Config{Procs: 1, SampleCores: 1, TrainCores: 1}); err != nil {
			return 0, err
		}
	}
	return tr.eng.EvaluateErr(tr.opts.Dataset.ValIdx)
}

// Engine exposes the current Multi-Process Engine (nil before first use).
func (tr *Trainer) Engine() *engine.Engine { return tr.eng }

// Model returns the current model (replica 0 — replicas stay
// bit-identical), binding a minimal single-process engine first if the
// trainer has never run. The checkpoint path uses this to persist final
// weights for the inference server.
func (tr *Trainer) Model() (*nn.GNN, error) {
	if tr.eng == nil {
		if err := tr.bind(search.Config{Procs: 1, SampleCores: 1, TrainCores: 1}); err != nil {
			return nil, err
		}
	}
	return tr.eng.Model(0), nil
}

// bind (re-)launches the Multi-Process Engine for cfg: release the old
// core binding, allocate cfg's cores, rebuild the engine, and carry the
// model weights over.
func (tr *Trainer) bind(cfg search.Config) error {
	if tr.eng != nil && cfg == tr.cfg {
		return nil
	}
	if tr.eng != nil {
		tr.weights = tr.eng.ExportWeights()
		if err := tr.opts.Binder.Release(tr.cores); err != nil {
			return err
		}
		tr.cores = nil
		tr.eng = nil
	}
	cores, err := tr.opts.Binder.Allocate(cfg.Procs * (cfg.SampleCores + cfg.TrainCores))
	if err != nil {
		return fmt.Errorf("core: binding %s: %w", cfg, err)
	}
	// Sharded runs rebuild the replica→shard mapping for the new process
	// count; the retired exchange's traffic (totals and per-peer rows)
	// is folded into the running accumulators so the re-launch doesn't
	// lose it, and its transport is closed.
	var sources []engine.DataSource
	var exchange *ddp.HaloExchange
	fail := func(err error) error {
		if exchange != nil {
			exchange.Close()
		}
		if relErr := tr.opts.Binder.Release(cores); relErr != nil {
			return fmt.Errorf("core: %v (and release failed: %v)", err, relErr)
		}
		return err
	}
	var setup *engine.PartitionSetup
	if tr.opts.Shards != nil {
		sources, exchange, err = engine.NewShardSourcesOpts(tr.opts.Shards, cfg.Procs,
			engine.ShardSourceOptions{Transport: tr.opts.Transport})
		if err != nil {
			return fail(err)
		}
		// Local regime: the partition samplers and owned target sets
		// follow the same shard→replica mapping as the sources, so they
		// are rebuilt together on every process-count change.
		if tr.opts.SamplingRegime == engine.RegimeLocal {
			setup, err = engine.NewPartitionSetup(tr.opts.Shards, tr.opts.Dataset, cfg.Procs, tr.opts.LocalFanouts)
			if err != nil {
				return fail(err)
			}
		}
	}
	ecfg := engine.Config{
		Dataset:        tr.opts.Dataset,
		Sampler:        tr.opts.Sampler,
		Model:          tr.opts.Model,
		BatchSize:      tr.opts.BatchSize,
		LR:             tr.opts.LR,
		NumProcs:       cfg.Procs,
		SampleWorkers:  cfg.SampleCores,
		TrainWorkers:   cfg.TrainCores,
		Seed:           tr.opts.Seed,
		Sources:        sources,
		NoOverlap:      tr.opts.NoOverlap,
		SamplingRegime: tr.opts.SamplingRegime,
	}
	if setup != nil {
		ecfg.LocalSamplers = setup.Samplers
		ecfg.LocalTargets = setup.Targets
	}
	eng, err := engine.New(ecfg)
	if err != nil {
		return fail(err)
	}
	if tr.weights != nil {
		if err := eng.ImportWeights(tr.weights); err != nil {
			return fail(err)
		}
	}
	if tr.exchange != nil {
		tr.foldExchange()
		tr.exchange.Close()
	}
	tr.exchange = exchange
	tr.eng = eng
	tr.cores = cores
	tr.cfg = cfg
	return nil
}

// Close releases the trainer's core binding and shuts the exchange's
// transport down, folding its traffic into the run totals so
// ExchangeStats stays complete after Close.
func (tr *Trainer) Close() error {
	if tr.exchange != nil {
		tr.foldExchange()
		tr.exchange.Close()
		tr.exchange = nil
	}
	if tr.cores == nil {
		return nil
	}
	err := tr.opts.Binder.Release(tr.cores)
	tr.cores = nil
	tr.eng = nil
	return err
}
