// Package core wires ARGO's runtime components together: the
// Multi-Process Engine (n synchronized training replicas over the engine
// package) and the Core-Binder (virtual-core accounting through
// platform.Allocator). The public package argo at the module root wraps
// this with the paper's user-facing API.
package core

import (
	"context"
	"fmt"
	"time"

	"argo/internal/ddp"
	"argo/internal/engine"
	"argo/internal/graph"
	"argo/internal/nn"
	"argo/internal/platform"
	"argo/internal/sampler"
	"argo/internal/search"
	"argo/internal/tensor"
)

// TrainerOptions configures a real (not simulated) GNN training job that
// ARGO manages.
type TrainerOptions struct {
	Dataset   *graph.Dataset
	Sampler   sampler.Sampler
	Model     nn.ModelSpec
	BatchSize int
	LR        float64
	Seed      int64
	// Binder supplies the virtual cores processes are bound to. Defaults
	// to an allocator over a machine with as many cores as the largest
	// configuration can use.
	Binder *platform.Allocator
	// Shards switches on the shard-aware training path: Dataset must
	// then be the set's Skeleton() (topology + splits, no features), the
	// sampler must be built over the skeleton's graph, and every replica
	// maps only its own shards, exchanging halo features through a
	// ddp.HaloExchange that is rebuilt whenever the auto-tuner changes
	// the process count (shard→replica ownership is shard index mod n).
	Shards *graph.ShardSet
}

// Trainer runs mini-batch GNN training under changing ARGO
// configurations, preserving model state across re-launches: when the
// auto-tuner picks a different process count, the current weights are
// exported from the old Multi-Process Engine and imported into the new
// one (the re-launch described in paper §VI-F).
type Trainer struct {
	opts TrainerOptions

	cfg     search.Config
	eng     *engine.Engine
	cores   []platform.CoreID
	weights []*tensor.Matrix
	epoch   int
	losses  []float64

	// exchange is the current halo exchange (sharded runs only);
	// haloTotal accumulates traffic from exchanges retired by
	// re-launches, so HaloStats covers the whole run.
	exchange  *ddp.HaloExchange
	haloTotal ddp.HaloStats
}

// NewTrainer validates opts and returns an idle trainer.
func NewTrainer(opts TrainerOptions) (*Trainer, error) {
	if opts.Dataset == nil || opts.Sampler == nil {
		return nil, fmt.Errorf("core: dataset and sampler are required")
	}
	if opts.BatchSize < 1 {
		return nil, fmt.Errorf("core: batch size %d", opts.BatchSize)
	}
	if opts.Binder == nil {
		spec := platform.Spec{Name: "virtual", Sockets: 1, CoresPerSocket: 8 * 20}
		opts.Binder = platform.NewAllocator(spec)
	}
	return &Trainer{opts: opts}, nil
}

// Epoch returns how many epochs have been trained so far.
func (tr *Trainer) Epoch() int { return tr.epoch }

// Config returns the currently bound configuration.
func (tr *Trainer) Config() search.Config { return tr.cfg }

// Step trains `epochs` epochs under cfg and returns the mean wall-clock
// epoch time in seconds. It satisfies the argo.TrainStep contract:
// cancellation is honoured between epochs, returning ctx's error without
// losing the model state accumulated so far.
func (tr *Trainer) Step(ctx context.Context, cfg search.Config, epochs int) (float64, error) {
	if epochs < 1 {
		return 0, nil
	}
	if err := tr.bind(cfg); err != nil {
		return 0, err
	}
	var total time.Duration
	for i := 0; i < epochs; i++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		res, err := tr.eng.RunEpoch(tr.epoch)
		if err != nil {
			return 0, err
		}
		tr.epoch++
		tr.losses = append(tr.losses, res.MeanLoss)
		total += res.Duration
	}
	return total.Seconds() / float64(epochs), nil
}

// LossHistory returns the mean training loss of every epoch trained so
// far, in order — the convergence trace the shard-parity check
// compares between sharded and single-store runs.
func (tr *Trainer) LossHistory() []float64 {
	out := make([]float64, len(tr.losses))
	copy(out, tr.losses)
	return out
}

// HaloStats returns the accumulated halo-exchange traffic of a sharded
// run (zero for single-store runs), summed across auto-tuner
// re-launches.
func (tr *Trainer) HaloStats() ddp.HaloStats {
	total := tr.haloTotal
	if tr.exchange != nil {
		total.Add(tr.exchange.TotalStats())
	}
	return total
}

// Evaluate reports validation accuracy under the current weights. Data-
// source failures (possible on the sharded path) surface as errors, not
// as a silent zero accuracy.
func (tr *Trainer) Evaluate() (float64, error) {
	if tr.eng == nil {
		if err := tr.bind(search.Config{Procs: 1, SampleCores: 1, TrainCores: 1}); err != nil {
			return 0, err
		}
	}
	return tr.eng.EvaluateErr(tr.opts.Dataset.ValIdx)
}

// Engine exposes the current Multi-Process Engine (nil before first use).
func (tr *Trainer) Engine() *engine.Engine { return tr.eng }

// bind (re-)launches the Multi-Process Engine for cfg: release the old
// core binding, allocate cfg's cores, rebuild the engine, and carry the
// model weights over.
func (tr *Trainer) bind(cfg search.Config) error {
	if tr.eng != nil && cfg == tr.cfg {
		return nil
	}
	if tr.eng != nil {
		tr.weights = tr.eng.ExportWeights()
		if err := tr.opts.Binder.Release(tr.cores); err != nil {
			return err
		}
		tr.cores = nil
		tr.eng = nil
	}
	cores, err := tr.opts.Binder.Allocate(cfg.Procs * (cfg.SampleCores + cfg.TrainCores))
	if err != nil {
		return fmt.Errorf("core: binding %s: %w", cfg, err)
	}
	// Sharded runs rebuild the replica→shard mapping for the new process
	// count; the retired exchange's traffic is folded into the running
	// total so the re-launch doesn't lose it.
	var sources []engine.DataSource
	var exchange *ddp.HaloExchange
	if tr.opts.Shards != nil {
		sources, exchange, err = engine.NewShardSources(tr.opts.Shards, cfg.Procs)
		if err != nil {
			if relErr := tr.opts.Binder.Release(cores); relErr != nil {
				return fmt.Errorf("core: %v (and release failed: %v)", err, relErr)
			}
			return err
		}
	}
	eng, err := engine.New(engine.Config{
		Dataset:       tr.opts.Dataset,
		Sampler:       tr.opts.Sampler,
		Model:         tr.opts.Model,
		BatchSize:     tr.opts.BatchSize,
		LR:            tr.opts.LR,
		NumProcs:      cfg.Procs,
		SampleWorkers: cfg.SampleCores,
		TrainWorkers:  cfg.TrainCores,
		Seed:          tr.opts.Seed,
		Sources:       sources,
	})
	if err != nil {
		relErr := tr.opts.Binder.Release(cores)
		if relErr != nil {
			return fmt.Errorf("core: %v (and release failed: %v)", err, relErr)
		}
		return err
	}
	if tr.weights != nil {
		if err := eng.ImportWeights(tr.weights); err != nil {
			if relErr := tr.opts.Binder.Release(cores); relErr != nil {
				return fmt.Errorf("core: %v (and release failed: %v)", err, relErr)
			}
			return err
		}
	}
	if tr.exchange != nil {
		tr.haloTotal.Add(tr.exchange.TotalStats())
	}
	tr.exchange = exchange
	tr.eng = eng
	tr.cores = cores
	tr.cfg = cfg
	return nil
}

// Close releases the trainer's core binding.
func (tr *Trainer) Close() error {
	if tr.cores == nil {
		return nil
	}
	err := tr.opts.Binder.Release(tr.cores)
	tr.cores = nil
	tr.eng = nil
	return err
}
