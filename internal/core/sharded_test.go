package core

import (
	"context"
	"math"
	"testing"

	"argo/internal/graph"
	"argo/internal/nn"
	"argo/internal/sampler"
	"argo/internal/search"
)

func shardedCoreDataset(t *testing.T) *graph.Dataset {
	t.Helper()
	spec := graph.DatasetSpec{
		Name:        "sharded-core",
		ScaledNodes: 200, ScaledEdges: 1200,
		ScaledF0: 8, ScaledHidden: 6, ScaledClasses: 3,
		Homophily: 0.65, Exponent: 2.2, TrainFrac: 0.5,
	}
	ds, err := graph.Build(spec, 13)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// The shard-aware trainer survives auto-tuner re-launches: as the
// process count changes the replica→shard mapping and halo exchange
// are rebuilt, weights carry over, and the loss trace stays equal to
// the single-store trainer driven through the identical configuration
// sequence.
func TestShardedTrainerMatchesAcrossRelaunches(t *testing.T) {
	ds := shardedCoreDataset(t)
	newSampler := func(g *graph.CSR) sampler.Sampler { return sampler.NewNeighbor(g, []int{4, 3}) }
	model := nn.ModelSpec{Kind: nn.KindSAGE, Dims: []int{8, 6, 3}, Seed: 5}

	single, err := NewTrainer(TrainerOptions{
		Dataset: ds, Sampler: newSampler(ds.Graph), Model: model,
		BatchSize: 24, LR: 0.01, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()

	ss, err := graph.ShardSetFromDataset(ds, graph.ShardOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	skel, err := ss.Skeleton()
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := NewTrainer(TrainerOptions{
		Dataset: skel, Sampler: newSampler(skel.Graph), Model: model,
		BatchSize: 24, LR: 0.01, Seed: 3, Shards: ss,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sharded.Close()

	// A config sequence with changing process counts forces two
	// re-launches (1→2→1 replicas) on each trainer.
	cfgs := []search.Config{
		{Procs: 1, SampleCores: 1, TrainCores: 1},
		{Procs: 2, SampleCores: 1, TrainCores: 1},
		{Procs: 1, SampleCores: 1, TrainCores: 2},
	}
	ctx := context.Background()
	for _, cfg := range cfgs {
		if _, err := single.Step(ctx, cfg, 2); err != nil {
			t.Fatal(err)
		}
		if _, err := sharded.Step(ctx, cfg, 2); err != nil {
			t.Fatal(err)
		}
	}

	a, b := single.LossHistory(), sharded.LossHistory()
	if len(a) != len(b) || len(a) != 2*len(cfgs) {
		t.Fatalf("loss history lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if diff := math.Abs(a[i] - b[i]); diff > 1e-9 {
			t.Fatalf("epoch %d: single-store loss %v, sharded %v", i, a[i], b[i])
		}
	}
	if st := single.HaloStats(); st.RemoteRows != 0 || st.LocalRows != 0 {
		t.Fatalf("single-store trainer reported halo traffic: %+v", st)
	}
	// Cumulative across re-launches: traffic from the retired n=2
	// exchange must survive into the final total.
	if st := sharded.HaloStats(); st.LocalRows == 0 || st.RemoteRows == 0 {
		t.Fatalf("sharded trainer lost halo accounting across re-launches: %+v", st)
	}

	accA, err := single.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	accB, err := sharded.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if accA != accB {
		t.Fatalf("validation accuracy diverged: %v vs %v", accA, accB)
	}
}
