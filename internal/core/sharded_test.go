package core

import (
	"context"
	"encoding/json"
	"math"
	"testing"

	"argo/internal/ddp"
	"argo/internal/graph"
	"argo/internal/nn"
	"argo/internal/sampler"
	"argo/internal/search"
)

func shardedCoreDataset(t *testing.T) *graph.Dataset {
	t.Helper()
	spec := graph.DatasetSpec{
		Name:        "sharded-core",
		ScaledNodes: 200, ScaledEdges: 1200,
		ScaledF0: 8, ScaledHidden: 6, ScaledClasses: 3,
		Homophily: 0.65, Exponent: 2.2, TrainFrac: 0.5,
	}
	ds, err := graph.Build(spec, 13)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// The shard-aware trainer survives auto-tuner re-launches: as the
// process count changes the replica→shard mapping and halo exchange
// are rebuilt, weights carry over, and the loss trace stays equal to
// the single-store trainer driven through the identical configuration
// sequence.
func TestShardedTrainerMatchesAcrossRelaunches(t *testing.T) {
	ds := shardedCoreDataset(t)
	newSampler := func(g *graph.CSR) sampler.Sampler { return sampler.NewNeighbor(g, []int{4, 3}) }
	model := nn.ModelSpec{Kind: nn.KindSAGE, Dims: []int{8, 6, 3}, Seed: 5}

	single, err := NewTrainer(TrainerOptions{
		Dataset: ds, Sampler: newSampler(ds.Graph), Model: model,
		BatchSize: 24, LR: 0.01, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()

	ss, err := graph.ShardSetFromDataset(ds, graph.ShardOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	skel, err := ss.Skeleton()
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := NewTrainer(TrainerOptions{
		Dataset: skel, Sampler: newSampler(skel.Graph), Model: model,
		BatchSize: 24, LR: 0.01, Seed: 3, Shards: ss,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sharded.Close()

	// A config sequence with changing process counts forces two
	// re-launches (1→2→1 replicas) on each trainer.
	cfgs := []search.Config{
		{Procs: 1, SampleCores: 1, TrainCores: 1},
		{Procs: 2, SampleCores: 1, TrainCores: 1},
		{Procs: 1, SampleCores: 1, TrainCores: 2},
	}
	ctx := context.Background()
	for _, cfg := range cfgs {
		if _, err := single.Step(ctx, cfg, 2); err != nil {
			t.Fatal(err)
		}
		if _, err := sharded.Step(ctx, cfg, 2); err != nil {
			t.Fatal(err)
		}
	}

	a, b := single.LossHistory(), sharded.LossHistory()
	if len(a) != len(b) || len(a) != 2*len(cfgs) {
		t.Fatalf("loss history lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if diff := math.Abs(a[i] - b[i]); diff > 1e-9 {
			t.Fatalf("epoch %d: single-store loss %v, sharded %v", i, a[i], b[i])
		}
	}
	if st := single.HaloStats(); st.RemoteRows != 0 || st.LocalRows != 0 {
		t.Fatalf("single-store trainer reported halo traffic: %+v", st)
	}
	// Cumulative across re-launches: traffic from the retired n=2
	// exchange must survive into the final total.
	if st := sharded.HaloStats(); st.LocalRows == 0 || st.RemoteRows == 0 {
		t.Fatalf("sharded trainer lost halo accounting across re-launches: %+v", st)
	}

	accA, err := single.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	accB, err := sharded.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if accA != accB {
		t.Fatalf("validation accuracy diverged: %v vs %v", accA, accB)
	}
}

// newShardedTrainer builds a fresh sharded trainer over its own shard
// set for the relaunch-accounting tests.
func newShardedTrainer(t *testing.T, ds *graph.Dataset, transport string) *Trainer {
	t.Helper()
	ss, err := graph.ShardSetFromDataset(ds, graph.ShardOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ss.Close() })
	skel, err := ss.Skeleton()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewTrainer(TrainerOptions{
		Dataset: skel, Sampler: sampler.NewNeighbor(skel.Graph, []int{4, 3}),
		Model:     nn.ModelSpec{Kind: nn.KindSAGE, Dims: []int{8, 6, 3}, Seed: 5},
		BatchSize: 24, LR: 0.01, Seed: 3, Shards: ss, Transport: transport,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	return tr
}

// relaunchSequence drives a trainer through process-count changes
// (1→2→1), capturing the exchange summary after every phase.
func relaunchSequence(t *testing.T, tr *Trainer) []*ddp.ExchangeStats {
	t.Helper()
	ctx := context.Background()
	var snaps []*ddp.ExchangeStats
	for _, cfg := range []search.Config{
		{Procs: 1, SampleCores: 1, TrainCores: 1},
		{Procs: 2, SampleCores: 1, TrainCores: 1},
		{Procs: 1, SampleCores: 1, TrainCores: 2},
	} {
		if _, err := tr.Step(ctx, cfg, 2); err != nil {
			t.Fatal(err)
		}
		snaps = append(snaps, tr.ExchangeStats())
	}
	return snaps
}

// The regression gate for satellite "traffic accounting survives a
// mid-run process-count change": totals and the per-peer matrix must
// accumulate monotonically across the 1→2→1 relaunches (the retired
// n=2 exchange's peer rows survive into the n=1 phase), two identical
// runs must pin byte-identical serialized stats, and the peer matrix
// must conserve every routed row.
func TestExchangeAccountingSurvivesRelaunches(t *testing.T) {
	ds := shardedCoreDataset(t)
	snaps := relaunchSequence(t, newShardedTrainer(t, ds, ""))

	// Phase 2 (n=2) generated cross-replica traffic; phase 3 (n=1) must
	// retain it even though the live exchange has a single replica and
	// no peers at all.
	after2, after3 := snaps[1], snaps[2]
	if after2.RemoteRows == 0 || after2.Messages == 0 {
		t.Fatalf("n=2 phase recorded no remote traffic: %+v", after2)
	}
	if len(after2.Peers) == 0 {
		t.Fatal("n=2 phase recorded no peer edges")
	}
	if after3.RemoteRows != after2.RemoteRows || after3.RemoteBytes != after2.RemoteBytes || after3.Messages != after2.Messages {
		t.Fatalf("relaunch to n=1 lost remote totals: %+v then %+v", after2, after3)
	}
	if after3.LocalRows <= after2.LocalRows {
		t.Fatalf("n=1 phase recorded no local traffic on top of %+v: %+v", after2, after3)
	}
	if len(after3.Peers) != len(after2.Peers) {
		t.Fatalf("relaunch dropped peer edges: %d then %d", len(after2.Peers), len(after3.Peers))
	}
	for i := range after3.Peers {
		if after3.Peers[i] != after2.Peers[i] {
			t.Fatalf("peer edge %d changed across relaunch: %+v then %+v", i, after2.Peers[i], after3.Peers[i])
		}
	}
	var peerRows int64
	for _, p := range after3.Peers {
		peerRows += p.Rows
		if p.From == p.To {
			t.Fatalf("self edge in peer matrix: %+v", p)
		}
	}
	if peerRows != after3.RemoteRows+after3.GradRows {
		t.Fatalf("peer matrix conserves %d rows, totals say %d", peerRows, after3.RemoteRows+after3.GradRows)
	}

	// Pin the whole-run accounting: an identical second run serialises
	// byte-identically (deterministic totals AND deterministic peer
	// order in the JSON the CLI embeds in -loss-json and the report).
	again := relaunchSequence(t, newShardedTrainer(t, ds, ""))
	a, err := json.Marshal(after3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(again[2])
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("exchange accounting not reproducible:\n%s\n%s", a, b)
	}
}

// The TCP transport must survive relaunches too (old listeners closed,
// new ones bound) with accounting identical to inproc.
func TestRelaunchOverTCPMatchesInproc(t *testing.T) {
	ds := shardedCoreDataset(t)
	inproc := relaunchSequence(t, newShardedTrainer(t, ds, ""))
	tcp := relaunchSequence(t, newShardedTrainer(t, ds, "tcp"))
	a, b := inproc[2], tcp[2]
	if a.Transport != "inproc" || b.Transport != "tcp" {
		t.Fatalf("transports %q/%q", a.Transport, b.Transport)
	}
	b.Transport = a.Transport
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatalf("tcp accounting diverged from inproc:\n%s\n%s", ja, jb)
	}
}

// Single-store trainers report no exchange at all.
func TestExchangeStatsNilForSingleStore(t *testing.T) {
	ds := shardedCoreDataset(t)
	tr, err := NewTrainer(TrainerOptions{
		Dataset: ds, Sampler: sampler.NewNeighbor(ds.Graph, []int{4, 3}),
		Model:     nn.ModelSpec{Kind: nn.KindSAGE, Dims: []int{8, 6, 3}, Seed: 5},
		BatchSize: 24, LR: 0.01, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if _, err := tr.Step(context.Background(), search.Config{Procs: 1, SampleCores: 1, TrainCores: 1}, 1); err != nil {
		t.Fatal(err)
	}
	if st := tr.ExchangeStats(); st != nil {
		t.Fatalf("single-store trainer reported exchange stats: %+v", st)
	}
}
