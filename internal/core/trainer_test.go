package core

import (
	"context"
	"errors"
	"testing"

	"argo/internal/graph"
	"argo/internal/nn"
	"argo/internal/platform"
	"argo/internal/sampler"
	"argo/internal/search"
)

func trainerOpts(t testing.TB) TrainerOptions {
	t.Helper()
	spec := graph.DatasetSpec{
		Name: "core-unit", ScaledNodes: 300, ScaledEdges: 2200,
		ScaledF0: 12, ScaledHidden: 8, ScaledClasses: 4,
		Homophily: 0.7, Exponent: 2.2, TrainFrac: 0.5,
	}
	ds, err := graph.Build(spec, 5)
	if err != nil {
		t.Fatal(err)
	}
	return TrainerOptions{
		Dataset:   ds,
		Sampler:   sampler.NewNeighbor(ds.Graph, []int{4, 4}),
		Model:     nn.ModelSpec{Kind: nn.KindSAGE, Dims: []int{12, 8, 4}, Seed: 3},
		BatchSize: 50,
		LR:        0.01,
		Seed:      9,
	}
}

func TestNewTrainerValidation(t *testing.T) {
	if _, err := NewTrainer(TrainerOptions{}); err == nil {
		t.Fatal("empty options must be rejected")
	}
	opts := trainerOpts(t)
	opts.BatchSize = 0
	if _, err := NewTrainer(opts); err == nil {
		t.Fatal("zero batch size must be rejected")
	}
}

func TestTrainerStepRunsEpochs(t *testing.T) {
	tr, err := NewTrainer(trainerOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	secs, err := tr.Step(context.Background(), search.Config{Procs: 2, SampleCores: 1, TrainCores: 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if secs <= 0 {
		t.Fatal("epoch time must be positive")
	}
	if tr.Epoch() != 3 {
		t.Fatalf("Epoch() = %d, want 3", tr.Epoch())
	}
	if _, err := tr.Step(context.Background(), search.Config{Procs: 2, SampleCores: 1, TrainCores: 1}, 0); err != nil {
		t.Fatal("zero epochs must be a no-op")
	}
}

// Reconfiguration must carry weights: training must keep improving across
// configuration changes rather than restarting from scratch.
func TestTrainerCarriesWeightsAcrossConfigs(t *testing.T) {
	tr, err := NewTrainer(trainerOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	configs := []search.Config{
		{Procs: 1, SampleCores: 1, TrainCores: 2},
		{Procs: 4, SampleCores: 1, TrainCores: 1},
		{Procs: 2, SampleCores: 2, TrainCores: 2},
	}
	for _, cfg := range configs {
		if _, err := tr.Step(context.Background(), cfg, 4); err != nil {
			t.Fatal(err)
		}
	}
	acc, err := tr.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	// 12 total epochs on an easy planted-community dataset: accuracy must
	// be far above the 0.25 chance level — impossible if weights were
	// reset at each re-launch (4 epochs per config would not suffice for
	// this margin... but 12 cumulative epochs are).
	fresh, err := NewTrainer(trainerOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	if _, err := fresh.Step(context.Background(), configs[2], 4); err != nil {
		t.Fatal(err)
	}
	freshAcc, err := fresh.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if acc <= freshAcc {
		t.Fatalf("carried-weights accuracy %.3f not above fresh-4-epoch accuracy %.3f", acc, freshAcc)
	}
}

// The Core-Binder must release cores on reconfiguration — otherwise
// repeated re-binding exhausts the allocator.
func TestTrainerReleasesCores(t *testing.T) {
	opts := trainerOpts(t)
	spec := platform.Spec{Name: "tiny", Sockets: 1, CoresPerSocket: 8}
	opts.Binder = platform.NewAllocator(spec)
	tr, err := NewTrainer(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	for i := 0; i < 5; i++ {
		// 2×(1+2) = 6 of 8 cores; leaks would fail on the second pass.
		if _, err := tr.Step(context.Background(), search.Config{Procs: 2, SampleCores: 1, TrainCores: 2}, 1); err != nil {
			t.Fatal(err)
		}
		if _, err := tr.Step(context.Background(), search.Config{Procs: 1, SampleCores: 2, TrainCores: 4}, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if free := opts.Binder.Free(); free != 8 {
		t.Fatalf("after Close, %d of 8 cores free", free)
	}
}

func TestTrainerRejectsOversizedConfig(t *testing.T) {
	opts := trainerOpts(t)
	opts.Binder = platform.NewAllocator(platform.Spec{Name: "tiny", Sockets: 1, CoresPerSocket: 4})
	tr, err := NewTrainer(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if _, err := tr.Step(context.Background(), search.Config{Procs: 4, SampleCores: 2, TrainCores: 2}, 1); err == nil {
		t.Fatal("16-core config on a 4-core binder must fail")
	}
	// The failed bind must not leak cores.
	if _, err := tr.Step(context.Background(), search.Config{Procs: 1, SampleCores: 1, TrainCores: 3}, 1); err != nil {
		t.Fatalf("valid config after failed bind: %v", err)
	}
}

func TestEvaluateWithoutStep(t *testing.T) {
	tr, err := NewTrainer(trainerOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	acc, err := tr.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0 || acc > 1 {
		t.Fatalf("accuracy %v out of range", acc)
	}
}

// Cancellation must surface between epochs and leave the trainer usable.
func TestTrainerStepHonoursContext(t *testing.T) {
	tr, err := NewTrainer(trainerOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	cfg := search.Config{Procs: 1, SampleCores: 1, TrainCores: 1}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := tr.Step(ctx, cfg, 3); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Step returned %v, want context.Canceled", err)
	}
	if tr.Epoch() != 0 {
		t.Fatalf("cancelled Step trained %d epochs", tr.Epoch())
	}
	if _, err := tr.Step(context.Background(), cfg, 1); err != nil {
		t.Fatalf("trainer unusable after cancellation: %v", err)
	}
}

// A failed weight import during re-launch must release the cores the new
// engine had already been allocated — otherwise every failed re-bind
// shrinks the machine until nothing fits.
func TestBindReleasesCoresWhenImportFails(t *testing.T) {
	opts := trainerOpts(t)
	spec := platform.Spec{Name: "tiny", Sockets: 1, CoresPerSocket: 8}
	opts.Binder = platform.NewAllocator(spec)
	tr, err := NewTrainer(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if _, err := tr.Step(context.Background(), search.Config{Procs: 1, SampleCores: 1, TrainCores: 1}, 1); err != nil {
		t.Fatal(err)
	}
	// Shrink the model between re-launches: the next bind exports the old
	// engine's weights, then ImportWeights into the reshaped new engine
	// fails — after the new engine's cores were already allocated.
	tr.opts.Model.Dims = []int{12, 6, 4}
	if _, err := tr.Step(context.Background(), search.Config{Procs: 2, SampleCores: 1, TrainCores: 1}, 1); err == nil {
		t.Fatal("mismatched weight import must fail the step")
	}
	if free := opts.Binder.Free(); free != 8 {
		t.Fatalf("after failed import, %d of 8 cores free (cores leaked)", free)
	}
	// The trainer must still be usable once the carried weights are gone.
	tr.weights = nil
	if _, err := tr.Step(context.Background(), search.Config{Procs: 1, SampleCores: 1, TrainCores: 1}, 1); err != nil {
		t.Fatalf("trainer unusable after failed re-bind: %v", err)
	}
}
